"""Tests for Lemma 4: name-independent error-reporting tree routing."""

import math

import pytest

from repro.core.analysis import lemma4_table_bits
from repro.graphs.generators import random_tree_graph
from repro.graphs.shortest_paths import shortest_path_tree
from repro.graphs.trees import Tree
from repro.trees.name_independent import NameIndependentTreeRouting


def build(m=50, k=2, seed=3):
    graph = random_tree_graph(m, seed=seed)
    tree = shortest_path_tree(graph, 0)
    names = {v: graph.name_of(v) for v in tree.nodes}
    return graph, tree, NameIndependentTreeRouting(tree, names, k=k, seed=seed)


@pytest.fixture(scope="module")
def setup_k2():
    return build(m=50, k=2, seed=3)


@pytest.fixture(scope="module")
def setup_k3():
    return build(m=60, k=3, seed=4)


class TestPrimaryNames:
    def test_root_has_empty_name(self, setup_k2):
        _, tree, routing = setup_k2
        assert routing.primary_name[tree.root] == ()

    def test_names_unique_and_lengths_bounded(self, setup_k2):
        _, tree, routing = setup_k2
        names = list(routing.primary_name.values())
        assert len(set(names)) == tree.size
        assert all(len(name) <= routing.max_digits for name in names)

    def test_closer_nodes_get_shorter_names(self, setup_k2):
        _, tree, routing = setup_k2
        ordered = tree.nodes_by_depth()
        lengths = [len(routing.primary_name[v]) for v in ordered]
        assert lengths == sorted(lengths)

    def test_level_capacity_respected(self, setup_k2):
        _, _, routing = setup_k2
        from collections import Counter
        by_len = Counter(len(p) for p in routing.primary_name.values())
        for length, count in by_len.items():
            if length > 0:
                assert count <= routing.sigma ** length

    def test_digits_of_and_required_bound(self, setup_k2):
        _, tree, routing = setup_k2
        assert routing.digits_of(tree.root) == 0
        deepest = max(tree.nodes, key=lambda v: routing.digits_of(v))
        assert routing.required_bound([deepest]) == routing.digits_of(deepest)
        assert routing.required_bound([]) == 1


class TestSearch:
    def test_unbounded_search_finds_every_node(self, setup_k2):
        graph, tree, routing = setup_k2
        for v in tree.nodes:
            result = routing.search_from_root(graph.name_of(v))
            assert result.found, f"node {v} not found"
            assert result.path[-1] == v
            assert result.destination == v

    def test_search_respects_stretch_bound(self, setup_k2):
        graph, tree, routing = setup_k2
        bound_factor = 2 * routing.max_digits - 1
        for v in tree.nodes:
            if v == tree.root:
                continue
            result = routing.search_from_root(graph.name_of(v))
            assert result.cost <= bound_factor * tree.depth[v] + 1e-9

    def test_search_for_missing_name_reports_error_to_root(self, setup_k2):
        _, tree, routing = setup_k2
        result = routing.search_from_root("definitely-not-a-node")
        assert not result.found
        assert result.path[0] == tree.root and result.path[-1] == tree.root

    def test_bounded_search_finds_shallow_nodes(self, setup_k3):
        graph, tree, routing = setup_k3
        shallow = [v for v in tree.nodes if routing.digits_of(v) <= 1]
        for v in shallow:
            result = routing.search_from_root(graph.name_of(v), j_bound=1)
            assert result.found

    def test_bounded_search_misses_deep_nodes_and_returns(self, setup_k3):
        graph, tree, routing = setup_k3
        deep = [v for v in tree.nodes if routing.digits_of(v) >= 2]
        if not deep:
            pytest.skip("tree too small to have deep nodes")
        missed = 0
        for v in deep:
            result = routing.search_from_root(graph.name_of(v), j_bound=1)
            if not result.found:
                missed += 1
                assert result.path[-1] == tree.root
        assert missed == len(deep)

    def test_bounded_search_error_cost_bound(self, setup_k3):
        # Lemma 4 (b): a failed j-bounded search costs at most
        # (2j-2) * max depth of the nodes with < j digits.
        graph, tree, routing = setup_k3
        j = 2
        eligible = [v for v in tree.nodes if routing.digits_of(v) <= j - 1]
        max_depth = max(tree.depth[v] for v in eligible)
        deep = [v for v in tree.nodes if routing.digits_of(v) > j]
        for v in deep[:20]:
            result = routing.search_from_root(graph.name_of(v), j_bound=j)
            if not result.found:
                assert result.cost <= (2 * j) * max_depth + 1e-9

    def test_search_walk_uses_tree_edges(self, setup_k2):
        graph, tree, routing = setup_k2
        v = tree.nodes[-1]
        result = routing.search_from_root(graph.name_of(v))
        for a, b in zip(result.path, result.path[1:]):
            if a != b:
                assert tree.parent.get(a) == b or tree.parent.get(b) == a


class TestStorage:
    def test_table_bits_within_lemma4_shape(self, setup_k2):
        _, tree, routing = setup_k2
        bound = lemma4_table_bits(tree.size, routing.k, constant=200.0)
        assert routing.max_table_bits() <= bound

    def test_dictionary_load_reasonable(self, setup_k2):
        _, tree, routing = setup_k2
        limit = routing.sigma * (math.log2(tree.size) + 1) * 4
        assert routing.max_dictionary_entries() <= limit

    def test_budget_contains_expected_fields(self, setup_k2):
        _, tree, routing = setup_k2
        breakdown = routing.table_budget(tree.root).breakdown()
        assert "hash_function" in breakdown
        assert "dictionary" in breakdown
        assert any(key.startswith("mu_") for key in breakdown)

    def test_header_bits_polylogarithmic(self, setup_k2):
        _, tree, routing = setup_k2
        assert routing.header_bits() <= 64 + 20 * (math.log2(tree.size) + 1) ** 2


class TestEdgeCases:
    def test_single_node_tree(self):
        tree = Tree.single_node(0)
        routing = NameIndependentTreeRouting(tree, {0: "only"}, k=2, seed=0)
        result = routing.search_from_root("only")
        assert result.found and result.cost == 0.0
        missing = routing.search_from_root("other")
        assert not missing.found

    def test_duplicate_names_rejected(self):
        graph = random_tree_graph(10, seed=1)
        tree = shortest_path_tree(graph, 0)
        names = {v: "same" for v in tree.nodes}
        with pytest.raises(Exception):
            NameIndependentTreeRouting(tree, names, k=2)

    def test_missing_name_rejected(self):
        graph = random_tree_graph(10, seed=1)
        tree = shortest_path_tree(graph, 0)
        names = {v: graph.name_of(v) for v in tree.nodes if v != tree.nodes[-1]}
        with pytest.raises(Exception):
            NameIndependentTreeRouting(tree, names, k=2)

    def test_contains_name(self, setup_k2):
        graph, tree, routing = setup_k2
        assert routing.contains_name(graph.name_of(tree.root))
        assert not routing.contains_name("nope")
