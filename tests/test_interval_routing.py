"""Tests for DFS-interval tree routing."""

import itertools

import pytest

from repro.graphs.shortest_paths import shortest_path_tree
from repro.graphs.trees import Tree
from repro.trees.interval_routing import IntervalTreeRouting


@pytest.fixture(scope="module")
def routing(geometric_spt):
    return IntervalTreeRouting(geometric_spt)


class TestLabels:
    def test_labels_are_dfs_numbers(self, routing, geometric_spt):
        labels = {routing.label_of(v) for v in geometric_spt.nodes}
        assert labels == set(range(geometric_spt.size))

    def test_node_with_label_inverts(self, routing, geometric_spt):
        for v in geometric_spt.nodes[:10]:
            assert routing.node_with_label(routing.label_of(v)) == v

    def test_label_bits_logarithmic(self, routing, geometric_spt):
        assert routing.label_bits() <= max(geometric_spt.size.bit_length(), 1)

    def test_unknown_node_rejected(self, routing):
        with pytest.raises(Exception):
            routing.label_of(10**6)
        with pytest.raises(Exception):
            routing.node_with_label(10**6)


class TestRouting:
    def test_walk_reaches_target_with_exact_tree_cost(self, routing, geometric_spt):
        nodes = geometric_spt.nodes
        pairs = list(itertools.islice(itertools.product(nodes[:8], nodes[-8:]), 40))
        for s, t in pairs:
            path, cost = routing.walk(s, routing.label_of(t))
            assert path[0] == s and path[-1] == t
            assert cost == pytest.approx(geometric_spt.tree_distance(s, t))

    def test_walk_to_self_is_trivial(self, routing, geometric_spt):
        v = geometric_spt.nodes[3]
        path, cost = routing.walk(v, routing.label_of(v))
        assert path == [v] and cost == 0.0

    def test_next_hop_none_at_destination(self, routing, geometric_spt):
        v = geometric_spt.nodes[0]
        assert routing.next_hop(v, routing.label_of(v)) is None

    def test_next_hop_follows_tree_path(self, routing, geometric_spt):
        s, t = geometric_spt.nodes[1], geometric_spt.nodes[-1]
        expected = geometric_spt.path(s, t)
        nxt = routing.next_hop(s, routing.label_of(t))
        if len(expected) > 1:
            assert nxt == expected[1]

    def test_path_follows_only_tree_edges(self, routing, geometric_spt):
        s, t = geometric_spt.nodes[2], geometric_spt.nodes[-3]
        path, _ = routing.walk(s, routing.label_of(t))
        for a, b in zip(path, path[1:]):
            assert geometric_spt.parent.get(a) == b or geometric_spt.parent.get(b) == a


class TestStorage:
    def test_table_bits_scale_with_degree(self, routing, geometric_spt):
        for v in geometric_spt.nodes:
            bits = routing.table_bits(v)
            degree = len(geometric_spt.children[v]) + (0 if v == geometric_spt.root else 1)
            assert bits >= degree  # at least one bit per incident tree edge
            assert bits <= (degree + 1) * 3 * max(geometric_spt.size.bit_length(), 1) + 64

    def test_budget_breakdown_fields(self, routing, geometric_spt):
        root_budget = routing.table_budget(geometric_spt.root).breakdown()
        assert "own_interval" in root_budget
        assert "parent_port" not in root_budget
        leaf = next(v for v in geometric_spt.nodes if not geometric_spt.children[v])
        leaf_budget = routing.table_budget(leaf).breakdown()
        assert leaf_budget["child_intervals"] == 0
        assert "parent_port" in leaf_budget


class TestSmallTrees:
    def test_single_node_tree(self):
        tree = Tree.single_node(0)
        routing = IntervalTreeRouting(tree)
        path, cost = routing.walk(0, routing.label_of(0))
        assert path == [0] and cost == 0.0

    def test_path_tree(self, tiny_path):
        tree = shortest_path_tree(tiny_path, 0)
        routing = IntervalTreeRouting(tree)
        path, cost = routing.walk(0, routing.label_of(5))
        assert path == [0, 1, 2, 3, 4, 5]
