"""End-to-end tests for the AGM routing scheme (Theorem 1)."""

import math

import numpy as np
import pytest

from repro.core.params import AGMParams
from repro.core.scheme import AGMRoutingScheme
from repro.graphs.generators import path_graph, random_geometric_graph, rescale_aspect_ratio
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.simulator import RoutingSimulator


class TestCorrectness:
    def test_routes_every_pair_k2(self, small_geometric, geometric_oracle, agm_k2):
        sim = RoutingSimulator(small_geometric, oracle=geometric_oracle)
        pairs = sim.sample_pairs(200, seed=1)
        for u, v in pairs:
            result = agm_k2.route(u, small_geometric.name_of(v))
            assert result.found, f"pair ({u}, {v}) not routed"
            assert result.path[0] == u and result.path[-1] == v
            sim.verify_walk(result, u, v)

    def test_routes_every_pair_k3(self, small_er, er_oracle, agm_k3):
        sim = RoutingSimulator(small_er, oracle=er_oracle)
        for u, v in sim.sample_pairs(150, seed=2):
            result = agm_k3.route(u, small_er.name_of(v))
            assert result.found
            sim.verify_walk(result, u, v)

    def test_route_to_self(self, small_geometric, agm_k2):
        result = agm_k2.route(5, small_geometric.name_of(5))
        assert result.found and result.path == [5] and result.cost == 0.0

    def test_route_to_unknown_name_fails_gracefully(self, agm_k2):
        result = agm_k2.route(0, "no-such-node")
        assert not result.found
        assert result.path[0] == 0

    def test_invalid_source_rejected(self, agm_k2, small_geometric):
        with pytest.raises(Exception):
            agm_k2.route(small_geometric.n + 5, small_geometric.name_of(0))

    def test_k1_still_routes(self, small_er, er_oracle):
        scheme = AGMRoutingScheme.build(small_er, k=1, params=AGMParams.experiment(),
                                        oracle=er_oracle, seed=3)
        sim = RoutingSimulator(small_er, oracle=er_oracle)
        report = sim.evaluate(scheme, num_pairs=60, seed=4)
        assert report.failures == 0

    def test_fallback_rarely_or_never_used(self, agm_k2, small_geometric, geometric_oracle):
        sim = RoutingSimulator(small_geometric, oracle=geometric_oracle)
        before = agm_k2.fallback_uses
        sim.evaluate(agm_k2, num_pairs=100, seed=9)
        assert agm_k2.fallback_uses - before <= 5

    def test_disconnected_graph(self):
        g = WeightedGraph(8, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 2.0), (6, 7, 1.0)])
        scheme = AGMRoutingScheme.build(g, k=2, params=AGMParams.experiment(), seed=1)
        ok = scheme.route(0, g.name_of(2))
        assert ok.found
        cross = scheme.route(0, g.name_of(4))
        assert not cross.found

    def test_rejects_bad_k(self, small_geometric):
        with pytest.raises(Exception):
            AGMRoutingScheme.build(small_geometric, k=0)


class TestStretch:
    def test_stretch_within_linear_bound_k2(self, small_geometric, geometric_oracle, agm_k2):
        sim = RoutingSimulator(small_geometric, oracle=geometric_oracle)
        report = sim.evaluate(agm_k2, num_pairs=200, seed=11)
        assert report.failures == 0
        # O(k) with the constants of the analysis: generous envelope 16k + 8
        assert report.max_stretch <= 16 * agm_k2.k + 8

    def test_stretch_within_linear_bound_k3(self, small_er, er_oracle, agm_k3):
        sim = RoutingSimulator(small_er, oracle=er_oracle)
        report = sim.evaluate(agm_k3, num_pairs=150, seed=12)
        assert report.failures == 0
        assert report.max_stretch <= 16 * agm_k3.k + 8

    def test_average_stretch_much_smaller_than_max(self, small_geometric, geometric_oracle,
                                                   agm_k2):
        sim = RoutingSimulator(small_geometric, oracle=geometric_oracle)
        report = sim.evaluate(agm_k2, num_pairs=200, seed=13)
        assert report.avg_stretch <= report.max_stretch
        assert report.avg_stretch < 4.0


class TestSpace:
    def test_every_node_has_a_nonempty_table(self, agm_k2, small_geometric):
        for v in range(small_geometric.n):
            assert agm_k2.table_bits(v) > 0

    def test_max_avg_total_consistent(self, agm_k2, small_geometric):
        assert agm_k2.max_table_bits() >= agm_k2.avg_table_bits()
        assert agm_k2.total_bits() == pytest.approx(
            sum(agm_k2.table_bits(v) for v in range(small_geometric.n)))

    def test_breakdown_contains_all_strategies(self, agm_k2):
        breakdown = agm_k2.table_breakdown()
        assert breakdown.get("sparse_tree_tables", 0) > 0
        assert breakdown.get("decomposition_ranges", 0) > 0
        assert breakdown.get("fallback_tables", 0) > 0

    def test_name_independent_scheme_has_no_labels(self, agm_k2):
        assert agm_k2.max_label_bits() == 0
        assert agm_k2.labeled is False

    def test_header_bits_polylogarithmic(self, agm_k2, small_geometric):
        n = small_geometric.n
        assert agm_k2.header_bits() <= 64 + 40 * (math.log2(n) + 1) ** 2

    def test_scale_free_tables(self):
        """Table sizes stay bounded when the aspect ratio grows by six orders of magnitude.

        The per-node storage of the scheme is bounded by a Δ-independent quantity
        (the number of trees a node can participate in saturates); the measured
        value may drift by a small constant factor because the lazy
        materialization documented in DESIGN.md §3 only builds the trees routing
        actually touches, but it must not exhibit the log Δ growth of the
        hierarchical baselines (that contrast is experiment E3).
        """
        base = random_geometric_graph(36, weights="unit", seed=20)
        sizes = []
        for target in (1e2, 1e8):
            g = rescale_aspect_ratio(base, target, seed=3)
            scheme = AGMRoutingScheme.build(g, k=2, params=AGMParams.experiment(), seed=4)
            sizes.append(scheme.max_table_bits())
        assert sizes[1] <= 3.0 * sizes[0]

    def test_describe_fields(self, agm_k2):
        info = agm_k2.describe()
        assert info["scheme"] == "agm"
        assert info["k"] == 2
        assert info["num_sparse_trees"] >= 1
        assert "fallback_uses" in info


class TestDeterminism:
    def test_same_seed_same_tables_and_routes(self, small_er, er_oracle):
        a = AGMRoutingScheme.build(small_er, k=2, params=AGMParams.experiment(),
                                   oracle=er_oracle, seed=77)
        b = AGMRoutingScheme.build(small_er, k=2, params=AGMParams.experiment(),
                                   oracle=er_oracle, seed=77)
        assert a.max_table_bits() == b.max_table_bits()
        for u, v in [(0, 5), (3, 17), (10, 2)]:
            ra = a.route(u, small_er.name_of(v))
            rb = b.route(u, small_er.name_of(v))
            assert ra.path == rb.path and ra.cost == pytest.approx(rb.cost)

    def test_path_graph_small(self):
        g = path_graph(10, weights="unit", seed=1)
        scheme = AGMRoutingScheme.build(g, k=2, params=AGMParams.experiment(), seed=2)
        oracle = DistanceOracle(g)
        for u in range(g.n):
            for v in range(g.n):
                if u == v:
                    continue
                result = scheme.route(u, g.name_of(v))
                assert result.found
                assert result.cost >= oracle.dist(u, v) - 1e-9
