"""Unit tests for WeightedGraph."""

import numpy as np
import pytest

from repro.graphs.graph import WeightedGraph
from repro.utils.validation import ValidationError


def triangle() -> WeightedGraph:
    return WeightedGraph(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0)], names=["a", "b", "c"])


class TestConstruction:
    def test_basic_counts(self):
        g = triangle()
        assert g.n == 3
        assert g.num_edges == 3
        assert len(g) == 3

    def test_rejects_self_loop(self):
        with pytest.raises(ValidationError):
            WeightedGraph(2, [(0, 0, 1.0)])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValidationError):
            WeightedGraph(2, [(0, 1, 0.0)])
        with pytest.raises(ValidationError):
            WeightedGraph(2, [(0, 1, -3.0)])

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(ValidationError):
            WeightedGraph(2, [(0, 2, 1.0)])

    def test_rejects_empty_graph(self):
        with pytest.raises(ValidationError):
            WeightedGraph(0, [])

    def test_parallel_edges_keep_minimum(self):
        g = WeightedGraph(2, [(0, 1, 5.0), (1, 0, 2.0)])
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == 2.0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            WeightedGraph(2, [(0, 1, 1.0)], names=["x", "x"])

    def test_wrong_name_count_rejected(self):
        with pytest.raises(ValidationError):
            WeightedGraph(2, [(0, 1, 1.0)], names=["x"])

    def test_generated_names_unique_and_deterministic(self):
        g1 = WeightedGraph(20, [(i, i + 1, 1.0) for i in range(19)], seed=5)
        g2 = WeightedGraph(20, [(i, i + 1, 1.0) for i in range(19)], seed=5)
        assert len(set(g1.names)) == 20
        assert g1.names == g2.names


class TestAccessors:
    def test_names_and_lookup(self):
        g = triangle()
        assert g.name_of(1) == "b"
        assert g.index_of("c") == 2
        assert g.has_name("a") and not g.has_name("z")

    def test_neighbors_and_degree(self):
        g = triangle()
        assert dict(g.neighbors(0)) == {1: 1.0, 2: 5.0}
        assert g.degree(0) == 2
        assert g.max_degree() == 2
        assert g.neighbor_indices(0) == [1, 2]

    def test_edges_iteration_each_once(self):
        g = triangle()
        edges = sorted(g.edges())
        assert edges == [(0, 1, 1.0), (0, 2, 5.0), (1, 2, 2.0)]

    def test_edge_weight_and_has_edge(self):
        g = triangle()
        assert g.has_edge(2, 0)
        assert g.edge_weight(2, 1) == 2.0
        with pytest.raises(ValidationError):
            WeightedGraph(3, [(0, 1, 1.0)]).edge_weight(1, 2)

    def test_weight_extremes(self):
        g = triangle()
        assert g.min_weight() == 1.0
        assert g.max_weight() == 5.0
        assert g.total_weight() == 8.0


class TestStructure:
    def test_csr_matrix_symmetric(self):
        g = triangle()
        mat = g.to_scipy_csr().toarray()
        assert np.allclose(mat, mat.T)
        assert mat[0, 1] == 1.0 and mat[1, 2] == 2.0

    def test_subgraph_preserves_names_and_edges(self):
        g = triangle()
        sub, mapping = g.subgraph([0, 2])
        assert mapping == [0, 2]
        assert sub.n == 2
        assert sub.num_edges == 1
        assert sub.edge_weight(0, 1) == 5.0
        assert sub.name_of(1) == "c"

    def test_subgraph_requires_valid_nodes(self):
        with pytest.raises(ValidationError):
            triangle().subgraph([0, 7])

    def test_connected_components(self):
        g = WeightedGraph(5, [(0, 1, 1.0), (2, 3, 1.0)])
        comps = g.connected_components()
        assert sorted(map(len, comps), reverse=True) == [2, 2, 1]
        assert not g.is_connected()
        assert triangle().is_connected()

    def test_add_edge_invalidates_component_and_csr_caches(self):
        g = WeightedGraph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        ids = g.component_ids()
        assert ids[0] != ids[2]
        assert g.to_scipy_csr()[0, 2] == 0.0
        g.add_edge(1, 2, 2.5)
        fresh = g.component_ids()
        assert fresh[0] == fresh[2] == fresh[1] == fresh[3]
        assert g.is_connected()
        assert g.to_scipy_csr()[1, 2] == 2.5
        assert g.num_edges == 3

    def test_copy_with_weights(self):
        g = triangle()
        doubled = g.copy_with_weights(lambda u, v, w: 2 * w)
        assert doubled.edge_weight(0, 1) == 2.0
        assert doubled.names == g.names

    def test_networkx_roundtrip(self):
        g = triangle()
        nxg = g.to_networkx()
        back = WeightedGraph.from_networkx(nxg, names=g.names)
        assert back.n == g.n
        assert sorted(back.edges()) == sorted(g.edges())
