"""Unit tests for repro.utils (rng, bitsize, validation)."""

import numpy as np
import pytest

from repro.utils.bitsize import (
    BitBudget,
    bits_for_count,
    bits_for_distance,
    bits_for_id,
    ceil_log2,
    kib,
)
from repro.utils.rng import (
    bernoulli_subset,
    derive_rng,
    make_rng,
    sample_without_replacement,
    spawn_seeds,
)
from repro.utils.validation import (
    ValidationError,
    check_index,
    check_nonnegative,
    check_positive,
    check_probability,
    check_type,
    require,
)


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        a = make_rng(42).integers(0, 1000, size=5)
        b = make_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_make_rng_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_make_rng_accepts_seed_sequence(self):
        ss = np.random.SeedSequence(5)
        assert isinstance(make_rng(ss), np.random.Generator)

    def test_derive_rng_independent_of_key(self):
        a = derive_rng(1, 10).integers(0, 10**9)
        b = derive_rng(1, 11).integers(0, 10**9)
        assert a != b

    def test_derive_rng_deterministic(self):
        assert derive_rng(3, 1, 2).integers(0, 10**9) == derive_rng(3, 1, 2).integers(0, 10**9)

    def test_spawn_seeds_count_and_determinism(self):
        seeds = spawn_seeds(9, 8)
        assert len(seeds) == 8
        assert seeds == spawn_seeds(9, 8)

    def test_sample_without_replacement_respects_size(self):
        rng = make_rng(0)
        out = sample_without_replacement(rng, range(100), 10)
        assert len(out) == 10
        assert len(set(out)) == 10

    def test_sample_without_replacement_small_population(self):
        rng = make_rng(0)
        assert sorted(sample_without_replacement(rng, [1, 2, 3], 10)) == [1, 2, 3]

    def test_bernoulli_subset_probability_extremes(self):
        rng = make_rng(0)
        assert bernoulli_subset(rng, range(50), 0.0) == []
        assert bernoulli_subset(rng, range(50), 1.0) == list(range(50))

    def test_bernoulli_subset_empty_population(self):
        assert bernoulli_subset(make_rng(0), [], 0.5) == []


class TestBitsize:
    def test_ceil_log2_small_values(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(1024) == 10

    def test_bits_for_count_boundaries(self):
        assert bits_for_count(0) == 1
        assert bits_for_count(1) == 1
        assert bits_for_count(255) == 8
        assert bits_for_count(256) == 9

    def test_bits_for_count_rejects_negative(self):
        with pytest.raises(ValueError):
            bits_for_count(-1)

    def test_bits_for_id(self):
        assert bits_for_id(2) == 1
        assert bits_for_id(1024) == 10
        with pytest.raises(ValueError):
            bits_for_id(0)

    def test_bits_for_distance_constant(self):
        assert bits_for_distance() == 64

    def test_bit_budget_accumulates(self):
        b = BitBudget()
        b.add("a", 10)
        b.add("a", 5, count=2)
        b.add("b", 7)
        assert b.total() == 27
        assert b.breakdown() == {"a": 20, "b": 7}

    def test_bit_budget_merge_with_prefix(self):
        a, b = BitBudget(), BitBudget()
        b.add("x", 3)
        a.merge(b, prefix="sub_")
        assert a.breakdown() == {"sub_x": 3}

    def test_bit_budget_rejects_negative(self):
        with pytest.raises(ValueError):
            BitBudget().add("a", -1)

    def test_bit_budget_iteration(self):
        b = BitBudget()
        b.add("a", 1)
        assert dict(iter(b)) == {"a": 1}

    def test_kib_conversion(self):
        assert kib(8 * 1024) == 1.0


class TestValidation:
    def test_require_passes_and_fails(self):
        require(True, "fine")
        with pytest.raises(ValidationError, match="broken"):
            require(False, "broken")

    def test_check_positive(self):
        assert check_positive(2.5, "x") == 2.5
        with pytest.raises(ValidationError):
            check_positive(0, "x")

    def test_check_nonnegative(self):
        assert check_nonnegative(0, "x") == 0
        with pytest.raises(ValidationError):
            check_nonnegative(-1, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")

    def test_check_index(self):
        assert check_index(3, 5, "i") == 3
        with pytest.raises(ValidationError):
            check_index(5, 5, "i")
        with pytest.raises(ValidationError):
            check_index(True, 5, "i")

    def test_check_type(self):
        assert check_type("a", (str,), "s") == "a"
        with pytest.raises(ValidationError):
            check_type(1, (str,), "s")
