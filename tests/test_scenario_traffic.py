"""Scenario x traffic composition: adversarial load under churn stays exact.

Satellite coverage for the experiment-matrix PR: churn scenarios that
compose a *non-uniform* traffic model (Zipf / hotspot / flash crowd) must
keep the live timeline's delivery and stale-window accounting exact even
when the churn detaches exactly the nodes the model ranked hot — and the
hot-row scoring cache pinned for those hot destinations must be rebuilt,
not reused, when the hot set migrates or the graph mutates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.scenario import (
    SCENARIO_NAMES,
    TrafficDirective,
    make_scenario,
)
from repro.factory import build_scheme
from repro.graphs.generators import make_graph
from repro.graphs.shortest_paths import DistanceOracle
from repro.live import LiveSimulator
from repro.traffic.engine import hot_row_cache_for
from repro.traffic.models import make_traffic_model


def _live(scheme_name, scenario, model, *, n=72, seed=6, epochs=3,
          model_kwargs=None, **kwargs):
    graph = make_graph("barabasi-albert", n=n, seed=seed)
    oracle = DistanceOracle(graph)
    scheme = build_scheme(scheme_name, graph, k=2, seed=1, oracle=oracle)
    simulator = LiveSimulator(
        scheme, scenario, oracle=oracle, model=model,
        model_kwargs=model_kwargs, epochs=epochs, epoch_packets=512,
        stale_packets=256, seed=seed, **kwargs)
    return simulator.run()


class TestAdversarialScenarioAccounting:
    """Delivery/stale counters stay exact under churn x non-uniform load."""

    @pytest.mark.parametrize("scenario,model", [
        ("partition-and-heal", "zipf"),
        ("partition-and-heal", "hotspot"),
        ("flap-heavy", "hotspot"),
    ])
    def test_per_epoch_counters_are_exact(self, scenario, model):
        timeline = _live("thorup-zwick", scenario, model)
        rows = timeline.rows()
        assert rows, "timeline produced no epochs"
        for row in rows:
            # every routed packet is accounted for, none double-counted —
            # including epochs where the partition detached hot targets
            assert row["delivered"] + row["unreachable"] == row["packets"]
            assert row["failures"] == 0  # unreachable is not a failure
            assert 0.0 <= row["delivery_rate"] <= 1.0
            assert row["stale_delivered"] <= row["stale_packets"]
            if row["stale_packets"]:
                expected_loss = 1.0 - row["stale_delivered"] / row["stale_packets"]
                assert row["stale_loss"] == pytest.approx(expected_loss, abs=1e-9)

    def test_partition_detaching_hot_nodes_shows_in_stale_window(self):
        """partition-under-load aims the hotspot model at the region it then
        detaches: the stale window (old tables, new graph) must lose packets
        while the fresh per-epoch model (which only samples connected pairs)
        still accounts exactly."""
        timeline = _live("thorup-zwick", "partition-under-load", "zipf",
                         n=96, epochs=4)
        rows = timeline.rows()
        for row in rows:
            assert row["delivered"] + row["unreachable"] == row["packets"]
        # at least one partition epoch must actually hurt the stale window
        assert max(row["stale_loss"] for row in rows) > 0.0

    @pytest.mark.parametrize("scenario", ["flash-crowd", "hotspot-storm"])
    def test_adversarial_scenarios_deterministic(self, scenario):
        """verify_determinism re-runs every epoch resharded and with the
        compiled kernels disabled; any drift in the scenario->directive->
        model->cache chain would trip it."""
        timeline = _live("cowen", scenario, "zipf", n=60, epochs=2,
                         model_kwargs={"support": 8},
                         verify_determinism=True)
        assert all(row["determinism_checked"] for row in timeline.rows())

    def test_identical_seeds_identical_timelines(self):
        a = _live("cowen", "partition-and-heal", "hotspot", seed=11)
        b = _live("cowen", "partition-and-heal", "hotspot", seed=11)
        drop = ("total_repair_seconds", "total_recompile_seconds")
        strip = lambda s: {k: v for k, v in s.items() if k not in drop}
        assert strip(a.summary()) == strip(b.summary())


class TestTrafficDirectives:
    def test_new_scenarios_registered(self):
        for name in ("flash-crowd", "hotspot-storm", "partition-under-load"):
            assert name in SCENARIO_NAMES
            assert make_scenario(name).name == name

    def test_flash_crowd_migrates_structure_key(self):
        graph = make_graph("barabasi-albert", n=48, seed=3)
        scenario = make_scenario("flash-crowd", migrate_every=2)
        keys = []
        for epoch in range(4):
            directive = scenario.traffic_for_epoch(graph, epoch, 4)
            assert isinstance(directive, TrafficDirective)
            keys.append(directive.structure_key)
        assert keys[0] == keys[1] and keys[2] == keys[3]  # pinned within phase
        assert keys[0] != keys[2]  # migrated across phases

    def test_partition_under_load_targets_planned_region(self):
        graph = make_graph("barabasi-albert", n=64, seed=5)
        scenario = make_scenario("partition-under-load")
        from repro.utils.rng import derive_rng

        # before any events are planned there is no region to aim at
        assert scenario.traffic_for_epoch(graph, 0, 4) is None
        scenario.events_for_epoch(graph, 0, 4, derive_rng(0, 1))
        directive = scenario.traffic_for_epoch(graph, 1, 4)
        assert directive is not None and directive.model == "hotspot"
        nodes = directive.model_kwargs["nodes"]
        assert nodes and all(0 <= v < graph.n for v in nodes)


class TestHotRowCacheInvalidation:
    def _oracle_and_hot(self, seed=2):
        graph = make_graph("barabasi-albert", n=56, seed=seed)
        oracle = DistanceOracle(graph)
        model = make_traffic_model("zipf", graph, seed=4, support=8)
        return graph, oracle, np.asarray(model.hot_destinations())

    def test_cache_reused_for_same_hot_set(self):
        graph, oracle, hot = self._oracle_and_hot()
        a = hot_row_cache_for(oracle, hot, graph)
        b = hot_row_cache_for(oracle, hot, graph)
        assert a is b

    def test_migrated_hot_set_rebuilds_cache(self):
        """The flash-crowd seam: when the directive re-keys the structure
        seed the hot set moves, and reusing the old pinned rows would score
        stretch against the wrong destinations."""
        graph, oracle, hot = self._oracle_and_hot()
        a = hot_row_cache_for(oracle, hot, graph)
        migrated = np.asarray(sorted(set(range(8)) - set(hot.tolist()))[:4])
        b = hot_row_cache_for(oracle, migrated, graph)
        assert a is not b
        c = hot_row_cache_for(oracle, hot, graph)
        assert c is not None  # and is a fresh build for the original set again

    def test_graph_mutation_rebuilds_cache(self):
        graph, oracle, hot = self._oracle_and_hot()
        a = hot_row_cache_for(oracle, hot, graph)
        (u, v, w) = next(iter(graph.edges()))
        graph.set_edge_weight(u, v, w * 2.0)  # bumps graph.version
        b = hot_row_cache_for(oracle, hot, graph)
        assert a is not b
