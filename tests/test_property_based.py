"""Property-based tests (hypothesis) for the core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.params import AGMParams
from repro.core.scheme import AGMRoutingScheme
from repro.dynamics.events import apply_events, random_event_batch
from repro.factory import build_scheme
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, dijkstra, shortest_path_tree
from repro.hashing.universal import DigitHash, KWiseHash
from repro.routing.simulator import RoutingSimulator
from repro.trees.compact_labeled import CompactTreeRouting
from repro.trees.interval_routing import IntervalTreeRouting
from repro.utils.bitsize import bits_for_count, ceil_log2

SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
FAST = settings(max_examples=40, deadline=None)


# --------------------------------------------------------------------------- #
# graph strategies
# --------------------------------------------------------------------------- #
@st.composite
def connected_weighted_graphs(draw, max_nodes=16):
    """Random connected weighted graphs: a random spanning tree plus extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = {}
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        w = draw(st.floats(min_value=0.1, max_value=50.0, allow_nan=False))
        edges[(parent, v)] = round(w, 3)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        if key not in edges:
            w = draw(st.floats(min_value=0.1, max_value=50.0, allow_nan=False))
            edges[key] = round(w, 3)
    return WeightedGraph(n, [(a, b, w) for (a, b), w in edges.items()])


# --------------------------------------------------------------------------- #
# utils
# --------------------------------------------------------------------------- #
class TestBitsizeProperties:
    @FAST
    @given(st.integers(min_value=1, max_value=10**12))
    def test_ceil_log2_bounds(self, x):
        c = ceil_log2(x)
        assert 2 ** c >= x
        if c > 0:
            assert 2 ** (c - 1) < x

    @FAST
    @given(st.integers(min_value=0, max_value=10**9))
    def test_bits_for_count_sufficient(self, x):
        assert 2 ** bits_for_count(x) > x


class TestHashProperties:
    @FAST
    @given(st.integers(), st.integers(min_value=1, max_value=16))
    def test_kwise_hash_stable_and_in_range(self, name, independence):
        h = KWiseHash(independence, seed=7)
        v = h(name)
        assert v == h(name)
        assert 0 <= v < (1 << 61) - 1

    @FAST
    @given(st.text(min_size=0, max_size=20), st.integers(min_value=1, max_value=6),
           st.integers(min_value=2, max_value=9))
    def test_digit_hash_prefix_is_prefix(self, name, length, sigma):
        dh = DigitHash(sigma, length, seed=3)
        digits = dh.digits(name)
        assert len(digits) == length
        for j in range(length + 1):
            assert dh.prefix(name, j) == digits[:j]


# --------------------------------------------------------------------------- #
# graphs / shortest paths
# --------------------------------------------------------------------------- #
class TestShortestPathProperties:
    @SLOW
    @given(connected_weighted_graphs())
    def test_dijkstra_matches_scipy_and_triangle_inequality(self, graph):
        oracle = DistanceOracle(graph)
        dist, _ = dijkstra(graph, 0)
        assert np.allclose(dist, oracle.row(0), atol=1e-6)
        n = graph.n
        for a in range(min(n, 4)):
            for b in range(min(n, 4)):
                for c in range(min(n, 4)):
                    assert oracle.dist(a, c) <= oracle.dist(a, b) + oracle.dist(b, c) + 1e-6

    @SLOW
    @given(connected_weighted_graphs())
    def test_spt_depths_equal_distances(self, graph):
        oracle = DistanceOracle(graph)
        tree = shortest_path_tree(graph, 0)
        assert tree.size == graph.n
        for v in tree.nodes:
            assert tree.depth[v] == pytest.approx(oracle.dist(0, v), abs=1e-6)

    @SLOW
    @given(connected_weighted_graphs())
    def test_balls_nested_and_bounded(self, graph):
        oracle = DistanceOracle(graph)
        r1 = oracle.diameter() / 3
        small = set(oracle.ball(0, r1))
        big = set(oracle.ball(0, 2 * r1))
        assert small <= big
        assert oracle.ball_size(0, oracle.diameter() + 1) == graph.n


# --------------------------------------------------------------------------- #
# tree routing invariants
# --------------------------------------------------------------------------- #
class TestTreeRoutingProperties:
    @SLOW
    @given(connected_weighted_graphs(), st.integers(min_value=1, max_value=3))
    def test_compact_routing_is_stretch_one(self, graph, k):
        tree = shortest_path_tree(graph, 0)
        routing = CompactTreeRouting(tree, k=k)
        nodes = tree.nodes
        for s in nodes[: min(4, len(nodes))]:
            for t in nodes[-min(4, len(nodes)):]:
                path, cost = routing.walk(s, t)
                assert path[0] == s and path[-1] == t
                assert cost == pytest.approx(tree.tree_distance(s, t), abs=1e-6)

    @SLOW
    @given(connected_weighted_graphs())
    def test_interval_routing_equals_compact_routing_cost(self, graph):
        tree = shortest_path_tree(graph, 0)
        interval = IntervalTreeRouting(tree)
        compact = CompactTreeRouting(tree, k=2)
        nodes = tree.nodes
        s, t = nodes[0], nodes[-1]
        _, cost_a = interval.walk(s, interval.label_of(t))
        _, cost_b = compact.walk(s, t)
        assert cost_a == pytest.approx(cost_b, abs=1e-6)

    @SLOW
    @given(connected_weighted_graphs(), st.integers(min_value=1, max_value=3))
    def test_label_light_edges_bounded(self, graph, k):
        tree = shortest_path_tree(graph, 0)
        routing = CompactTreeRouting(tree, k=k)
        assert routing.max_light_edges() <= max(k, int(math.log2(max(tree.size, 2))) + 1)


# --------------------------------------------------------------------------- #
# churn: engine parity must survive mutation + repair
# --------------------------------------------------------------------------- #
class TestChurnEngineParityProperties:
    @SLOW
    @given(connected_weighted_graphs(max_nodes=12),
           st.sampled_from(["shortest-path", "thorup-zwick", "cowen",
                            "exponential"]),
           st.integers(min_value=0, max_value=2**16))
    def test_engines_produce_identical_walks_after_each_event_batch(
            self, graph, scheme_name, seed):
        """Scalar vs lockstep parity under mutation.

        After every event batch + ``maintain()`` — which patches NextHopTable
        columns / re-slots TreeBank trees for the incremental schemes — both
        engines must produce identical walks (node for node) and identical
        found/strategy metadata on a random pair sample.
        """
        scheme = build_scheme(scheme_name, graph, k=2, seed=seed,
                              oracle=DistanceOracle(graph, backend="dense"))
        for batch_index in range(2):
            events = random_event_batch(graph, 3, seed=seed + batch_index,
                                        kinds=("fail", "perturb"))
            delta = apply_events(graph, events)
            scheme.maintain(delta)
            simulator = RoutingSimulator(
                graph, oracle=DistanceOracle(graph, backend="dense"))
            import warnings

            with warnings.catch_warnings():
                # failures may have shattered the graph: a short sample is fine
                warnings.simplefilter("ignore")
                pairs = simulator.sample_pairs(8, seed=seed,
                                               on_shortfall="warn")
            scalar = simulator.route_batch(scheme, pairs, engine="scalar")
            lockstep = simulator.route_batch(scheme, pairs, engine="lockstep")
            for a, b in zip(scalar, lockstep):
                assert a.path == b.path
                assert a.found == b.found
                assert a.strategy == b.strategy
                assert a.phases_used == b.phases_used


# --------------------------------------------------------------------------- #
# the full scheme
# --------------------------------------------------------------------------- #
class TestSchemeProperties:
    @SLOW
    @given(connected_weighted_graphs(max_nodes=14), st.integers(min_value=1, max_value=3))
    def test_agm_always_finds_destination_with_valid_walk(self, graph, k):
        scheme = AGMRoutingScheme.build(graph, k=k, params=AGMParams.experiment(), seed=5)
        simulator = RoutingSimulator(graph)
        for u in range(min(graph.n, 4)):
            for v in range(graph.n - 1, max(graph.n - 4, -1), -1):
                if u == v:
                    continue
                result = scheme.route(u, graph.name_of(v))
                assert result.found
                cost = simulator.verify_walk(result, u, v)
                assert cost >= simulator.oracle.dist(u, v) - 1e-6
