"""Integration tests: all schemes on a common workload, examples, cross-module flows."""

import runpy
import sys
from pathlib import Path

import pytest

from repro import AGMParams, AGMRoutingScheme, RoutingSimulator, build_scheme
from repro.experiments.harness import run_matrix
from repro.graphs.generators import ring_of_cliques
from repro.graphs.shortest_paths import DistanceOracle

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


class TestCrossSchemeIntegration:
    @pytest.fixture(scope="class")
    def cliques_setup(self):
        graph = ring_of_cliques(5, 6, seed=42)
        oracle = DistanceOracle(graph)
        return graph, oracle, RoutingSimulator(graph, oracle=oracle)

    def test_all_schemes_route_correctly_on_common_graph(self, cliques_setup):
        graph, oracle, simulator = cliques_setup
        pairs = simulator.sample_pairs(60, seed=3)
        reports = {}
        for name in ("shortest-path", "cowen", "thorup-zwick",
                     "awerbuch-peleg", "exponential", "agm"):
            kwargs = {"params": AGMParams.experiment()} if name == "agm" else {}
            scheme = build_scheme(name, graph, k=2, seed=8, oracle=oracle, **kwargs)
            report = simulator.evaluate(scheme, pairs=pairs)
            assert report.failures == 0, f"{name} failed to route some pairs"
            reports[name] = report
        # qualitative shape of the comparison (Section 1 / 1.3):
        assert reports["shortest-path"].max_stretch <= reports["agm"].max_stretch
        assert reports["cowen"].max_stretch <= 3 + 1e-6
        assert (reports["shortest-path"].avg_table_bits
                > reports["thorup-zwick"].avg_table_bits)

    def test_run_matrix_integration(self, cliques_setup):
        graph, _, _ = cliques_setup
        result = run_matrix("integration", schemes=["agm"], graphs=[("cliques", graph)],
                            ks=[2], num_pairs=25, seed=1,
                            scheme_kwargs={"agm": {"params": AGMParams.experiment()}})
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["failures"] == 0
        assert row["fallback_uses"] == 0 or row["fallback_uses"] < 5

    def test_agm_k_sweep_space_stretch_tradeoff_direction(self, cliques_setup):
        """Higher k must not *decrease* measured stretch by much; the point of the
        trade-off is that stretch grows (roughly linearly) while space per level
        shrinks.  With tiny n the space side is noisy, so only the stretch
        direction is asserted here; the space exponent is covered by benches."""
        graph, oracle, simulator = cliques_setup
        stretches = []
        for k in (1, 3):
            scheme = AGMRoutingScheme.build(graph, k=k, params=AGMParams.experiment(),
                                            oracle=oracle, seed=5)
            report = simulator.evaluate(scheme, num_pairs=60, seed=6)
            assert report.failures == 0
            stretches.append(report.avg_stretch)
        assert stretches[1] >= stretches[0] * 0.8


class TestExamples:
    """Every example script must run end-to-end (they are part of the public API surface)."""

    @pytest.mark.parametrize("script", ["quickstart.py", "dht_overlay.py"])
    def test_fast_examples_run(self, script, capsys):
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
        out = capsys.readouterr().out
        assert "stretch" in out.lower()

    def test_scale_free_example_runs(self, capsys):
        runpy.run_path(str(EXAMPLES_DIR / "scale_free_demo.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "aspect ratio" in out.lower()

    @pytest.mark.slow
    def test_isp_example_runs(self, capsys):
        runpy.run_path(str(EXAMPLES_DIR / "isp_network.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "trade-off" in out.lower()


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        assert set(repro.__all__) >= {"WeightedGraph", "AGMRoutingScheme", "RoutingSimulator",
                                      "AGMParams", "build_scheme", "RouteResult"}
        assert repro.__version__

    def test_readme_quickstart_snippet(self, small_geometric):
        # mirrors the snippet in README.md / the package docstring
        from repro import AGMRoutingScheme, RoutingSimulator

        scheme = AGMRoutingScheme.build(small_geometric, k=2,
                                        params=AGMParams.experiment(), seed=1)
        report = RoutingSimulator(small_geometric).evaluate(scheme, num_pairs=50, seed=2)
        assert report.max_stretch >= 1.0
        assert report.failures == 0
