"""Tests for Lemma 7: dictionary tree routing with O(rad) lookups."""

import pytest

from repro.core.analysis import lemma7_route_bound
from repro.graphs.generators import random_tree_graph
from repro.graphs.shortest_paths import shortest_path_tree
from repro.graphs.trees import Tree
from repro.trees.error_reporting import DictionaryTreeRouting


@pytest.fixture(scope="module")
def setup():
    graph = random_tree_graph(45, seed=6)
    tree = shortest_path_tree(graph, 0)
    names = {v: graph.name_of(v) for v in tree.nodes}
    return graph, tree, DictionaryTreeRouting(tree, names, seed=6)


class TestDictionary:
    def test_every_name_has_a_responsible_node(self, setup):
        graph, tree, routing = setup
        for v in tree.nodes:
            responsible = routing.responsible_node(graph.name_of(v))
            assert tree.contains(responsible)
            assert graph.name_of(v) in routing.buckets[responsible]

    def test_bucket_entries_total_m(self, setup):
        _, tree, routing = setup
        assert sum(len(b) for b in routing.buckets.values()) == tree.size

    def test_bucket_load_balanced(self, setup):
        _, tree, routing = setup
        # expected load 1; w.h.p. O(log m / log log m)
        assert routing.max_bucket_entries() <= 10

    def test_contains_name(self, setup):
        graph, tree, routing = setup
        assert routing.contains_name(graph.name_of(tree.nodes[1]))
        assert not routing.contains_name("ghost")


class TestLookup:
    def test_lookup_finds_every_node_from_every_fifth_source(self, setup):
        graph, tree, routing = setup
        for source in tree.nodes[::5]:
            for target in tree.nodes[::7]:
                result = routing.lookup(source, graph.name_of(target))
                assert result.found
                assert result.path[0] == source and result.path[-1] == target
                assert result.destination == target

    def test_lookup_cost_within_lemma7_bound(self, setup):
        graph, tree, routing = setup
        bound = lemma7_route_bound(tree.radius(), tree.max_edge(), k=2)
        for source in tree.nodes[::4]:
            for target in tree.nodes[::6]:
                result = routing.lookup(source, graph.name_of(target))
                assert result.cost <= bound + 1e-9

    def test_miss_reports_back_to_source(self, setup):
        _, tree, routing = setup
        for source in tree.nodes[::6]:
            result = routing.lookup(source, "not-in-this-tree")
            assert not result.found
            assert result.path[0] == source and result.path[-1] == source
            bound = lemma7_route_bound(tree.radius(), tree.max_edge(), k=2)
            assert result.cost <= bound + 1e-9

    def test_lookup_from_root_alias(self, setup):
        graph, tree, routing = setup
        target = tree.nodes[-1]
        result = routing.lookup_from_root(graph.name_of(target))
        assert result.found and result.path[0] == tree.root

    def test_lookup_walk_uses_tree_edges(self, setup):
        graph, tree, routing = setup
        result = routing.lookup(tree.nodes[2], graph.name_of(tree.nodes[-2]))
        for a, b in zip(result.path, result.path[1:]):
            if a != b:
                assert tree.parent.get(a) == b or tree.parent.get(b) == a

    def test_lookup_self(self, setup):
        graph, tree, routing = setup
        v = tree.nodes[3]
        result = routing.lookup(v, graph.name_of(v))
        assert result.found and result.path[-1] == v

    def test_invalid_source_rejected(self, setup):
        graph, _, routing = setup
        with pytest.raises(Exception):
            routing.lookup(10**6, graph.name_of(0))


class TestStorage:
    def test_table_bits_positive_and_bounded(self, setup):
        _, tree, routing = setup
        for v in tree.nodes:
            bits = routing.table_bits(v)
            assert bits > 0
            # interval table + hash + a handful of bucket entries
            degree = len(tree.children[v]) + 1
            assert bits <= 4000 + degree * 64

    def test_budget_fields(self, setup):
        _, tree, routing = setup
        breakdown = routing.table_budget(tree.root).breakdown()
        assert "bucket_hash" in breakdown
        assert "bucket_entries" in breakdown
        assert any(key.startswith("interval_") for key in breakdown)

    def test_header_bits_small(self, setup):
        _, _, routing = setup
        assert routing.header_bits() <= 200


class TestEdgeCases:
    def test_single_node_tree(self):
        tree = Tree.single_node(9)
        routing = DictionaryTreeRouting(tree, {9: "solo"}, seed=1)
        hit = routing.lookup(9, "solo")
        assert hit.found and hit.cost == 0.0
        miss = routing.lookup(9, "other")
        assert not miss.found and miss.path == [9]

    def test_duplicate_names_rejected(self):
        graph = random_tree_graph(8, seed=2)
        tree = shortest_path_tree(graph, 0)
        with pytest.raises(Exception):
            DictionaryTreeRouting(tree, {v: "dup" for v in tree.nodes})
