"""Tests for Lemma 6: sparse covers and tree covers."""

import math

import pytest

from repro.covers.sparse_cover import build_sparse_cover
from repro.covers.tree_cover import build_tree_cover
from repro.graphs.generators import erdos_renyi_graph, grid_graph, path_graph
from repro.graphs.shortest_paths import DistanceOracle


@pytest.fixture(scope="module")
def grid_and_oracle():
    g = grid_graph(6, 6, weights="unit", seed=1)
    return g, DistanceOracle(g)


@pytest.fixture(scope="module", params=[1.0, 2.0, 4.0])
def rho(request):
    return request.param


K = 2


class TestSparseCover:
    def test_every_ball_is_covered(self, grid_and_oracle, rho):
        g, oracle = grid_and_oracle
        cover = build_sparse_cover(g, K, rho, oracle=oracle)
        for v in range(g.n):
            cluster = cover.cluster_of_home(v)
            ball = set(oracle.ball(v, rho))
            assert ball <= cluster.nodes, f"ball of {v} not covered"

    def test_home_map_complete(self, grid_and_oracle, rho):
        g, oracle = grid_and_oracle
        cover = build_sparse_cover(g, K, rho, oracle=oracle)
        assert set(cover.home) == set(range(g.n))

    def test_membership_sparsity(self, grid_and_oracle, rho):
        g, oracle = grid_and_oracle
        cover = build_sparse_cover(g, K, rho, oracle=oracle)
        bound = 4 * K * math.ceil(g.n ** (1.0 / K)) + 4
        assert cover.max_membership(g.n) <= bound

    def test_kernel_centers_partition_home_assignments(self, grid_and_oracle):
        g, oracle = grid_and_oracle
        cover = build_sparse_cover(g, K, 2.0, oracle=oracle)
        seen = set()
        for cluster in cover.clusters:
            assert cluster.kernel_centers, "cluster with empty kernel"
            assert cluster.kernel_centers <= cluster.nodes
            assert not (cluster.kernel_centers & seen)
            seen |= cluster.kernel_centers
        assert seen == set(range(g.n))

    def test_node_subset_restriction(self, grid_and_oracle):
        g, oracle = grid_and_oracle
        subset = list(range(0, g.n, 2))
        cover = build_sparse_cover(g, K, 2.0, oracle=oracle, nodes=subset)
        assert set(cover.home) == set(subset)
        for cluster in cover.clusters:
            assert cluster.nodes <= set(subset)

    def test_invalid_arguments(self, grid_and_oracle):
        g, oracle = grid_and_oracle
        with pytest.raises(Exception):
            build_sparse_cover(g, 0, 1.0, oracle=oracle)
        with pytest.raises(Exception):
            build_sparse_cover(g, 2, 0.0, oracle=oracle)

    def test_unknown_cover_mode_rejected(self, grid_and_oracle, monkeypatch):
        g, oracle = grid_and_oracle
        monkeypatch.setenv("REPRO_COVER_MODE", "bogus")
        with pytest.raises(Exception, match="REPRO_COVER_MODE"):
            build_sparse_cover(g, K, 1.0, oracle=oracle)


class TestCoverModeParity:
    """csr ≡ regions ≡ scalar, decision for decision.

    The region-growing coarsening replaces per-node ball rows with
    multi-source limited Dijkstra layers; it must reproduce the CSR
    (row-streaming) mode's clusters, homes and phases exactly, which in
    turn must match the scalar reference — across families, k, radii and
    node subsets.  ``auto`` must resolve to one of the two.
    """

    def _canonical(self, cover):
        clusters = sorted((sorted(c.nodes), c.center,
                           sorted(c.kernel_centers)) for c in cover.clusters)
        return clusters, dict(cover.home)

    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("radius", [0.5, 1.0, 2.5, 6.0])
    def test_modes_bit_identical(self, monkeypatch, k, radius):
        for graph in (grid_graph(6, 6, weights="unit", seed=1),
                      erdos_renyi_graph(60, seed=9),
                      path_graph(40, seed=4)):
            oracle = DistanceOracle(graph)
            outs = {}
            for mode in ("csr", "regions"):
                monkeypatch.setenv("REPRO_COVER_MODE", mode)
                outs[mode] = self._canonical(
                    build_sparse_cover(graph, k, radius, oracle=oracle))
            monkeypatch.setenv("REPRO_BUILD_MODE", "scalar")
            monkeypatch.delenv("REPRO_COVER_MODE", raising=False)
            outs["scalar"] = self._canonical(
                build_sparse_cover(graph, k, radius, oracle=oracle))
            monkeypatch.delenv("REPRO_BUILD_MODE", raising=False)
            assert outs["csr"] == outs["regions"] == outs["scalar"]

    def test_subset_universe_parity(self, monkeypatch):
        graph = erdos_renyi_graph(70, seed=12)
        oracle = DistanceOracle(graph)
        subset = list(range(0, graph.n, 3))
        outs = {}
        for mode in ("csr", "regions"):
            monkeypatch.setenv("REPRO_COVER_MODE", mode)
            outs[mode] = self._canonical(
                build_sparse_cover(graph, 2, 2.0, oracle=oracle, nodes=subset))
        assert outs["csr"] == outs["regions"]


class TestTreeCover:
    def test_cover_property_for_home_trees(self, grid_and_oracle, rho):
        g, oracle = grid_and_oracle
        cover = build_tree_cover(g, K, rho, oracle=oracle)
        for v in range(g.n):
            assert cover.covers_ball(v, oracle), f"home tree of {v} misses its ball"

    def test_radius_bound(self, grid_and_oracle, rho):
        g, oracle = grid_and_oracle
        cover = build_tree_cover(g, K, rho, oracle=oracle)
        assert cover.max_radius() <= (2 * K + 3) * rho + 1e-9

    def test_max_edge_bound(self, grid_and_oracle, rho):
        g, oracle = grid_and_oracle
        cover = build_tree_cover(g, K, rho, oracle=oracle)
        assert cover.max_edge() <= 2 * rho + 1e-9

    def test_membership_bound(self, grid_and_oracle, rho):
        g, oracle = grid_and_oracle
        cover = build_tree_cover(g, K, rho, oracle=oracle)
        bound = 4 * K * math.ceil(g.n ** (1.0 / K)) + 4
        assert cover.max_membership() <= bound

    def test_trees_containing_consistent_with_home(self, grid_and_oracle):
        g, oracle = grid_and_oracle
        cover = build_tree_cover(g, K, 2.0, oracle=oracle)
        for v in range(0, g.n, 5):
            containing = cover.trees_containing(v)
            assert cover.home[v] in containing

    def test_k3_on_weighted_er_graph(self):
        g = erdos_renyi_graph(40, seed=8)
        oracle = DistanceOracle(g)
        rho = oracle.diameter() / 4
        cover = build_tree_cover(g, 3, rho, oracle=oracle)
        for v in range(g.n):
            assert cover.covers_ball(v, oracle)
        assert cover.max_edge() <= 2 * rho + 1e-9

    def test_large_rho_gives_single_tree_per_component(self, grid_and_oracle):
        g, oracle = grid_and_oracle
        cover = build_tree_cover(g, K, oracle.diameter() * 2, oracle=oracle)
        assert len(cover.trees) == 1
        assert cover.trees[0].size == g.n

    def test_tiny_rho_gives_small_trees(self):
        g = path_graph(12, weights="unit", seed=0)
        oracle = DistanceOracle(g)
        cover = build_tree_cover(g, 2, 1.0, oracle=oracle)
        assert cover.max_radius() <= (2 * 2 + 3) * 1.0
        for v in range(g.n):
            assert cover.covers_ball(v, oracle)

    def test_disconnected_graph_handled_per_component(self):
        from repro.graphs.graph import WeightedGraph

        g = WeightedGraph(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)])
        oracle = DistanceOracle(g)
        cover = build_tree_cover(g, 2, 1.0, oracle=oracle)
        for v in range(g.n):
            assert cover.covers_ball(v, oracle)
        for tree in cover.trees:
            nodes = set(tree.nodes)
            assert nodes <= {0, 1, 2} or nodes <= {3, 4, 5}
