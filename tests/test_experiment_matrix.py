"""Tests for the config-driven experiment matrix (spec, kinds, runner, CLI)."""

import json
import sys

import pytest

from repro.experiments import exp_comparison
from repro.experiments.matrix import (
    KIND_NAMES,
    load_spec,
    run_spec,
    spec_from_mapping,
    strip_timing,
)
from repro.experiments.matrix.kinds import (
    graph_factory_from_source,
    resolve_graph_sources,
    resolve_scheme_kwargs,
)
from repro.experiments.matrix.spec import parse_count, pick_size, spec_fingerprint


class TestSpec:
    def test_minimal_spec(self):
        spec = spec_from_mapping({"name": "x", "kind": "comparison"})
        assert spec.seeds == (0,) and spec.params == {}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            spec_from_mapping({"name": "x", "kind": "no-such-kind"})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown top-level"):
            spec_from_mapping({"name": "x", "kind": "grid", "grpahs": []})

    def test_bad_seeds_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            spec_from_mapping({"name": "x", "kind": "grid", "seeds": ["a"]})
        with pytest.raises(ValueError, match="seeds"):
            spec_from_mapping({"name": "x", "kind": "grid", "seeds": []})

    def test_scalar_seed_promoted(self):
        spec = spec_from_mapping({"name": "x", "kind": "grid", "seeds": 7})
        assert spec.seeds == (7,)

    def test_parse_count(self):
        assert parse_count(123) == 123
        assert parse_count("50k") == 50_000
        assert parse_count("1.5M") == 1_500_000
        assert parse_count("2_000") == 2_000
        with pytest.raises(ValueError):
            parse_count("lots")

    def test_pick_size(self):
        assert pick_size({"quick": 10, "full": 99}, quick=True) == 10
        assert pick_size({"quick": 10, "full": 99}, quick=False) == 99
        assert pick_size({"full": 99}, quick=True) == 99  # fallback to the one given
        assert pick_size(42, quick=True) == 42
        with pytest.raises(ValueError, match="quick"):
            pick_size({"small": 1}, quick=True)

    def test_fingerprint_ignores_seed_list_but_not_params(self):
        a = spec_from_mapping({"name": "x", "kind": "comparison", "seeds": [0]})
        b = spec_from_mapping({"name": "x", "kind": "comparison", "seeds": [0, 1, 2]})
        c = spec_from_mapping({"name": "x", "kind": "comparison",
                               "params": {"k": 2}})
        assert spec_fingerprint(a, True) == spec_fingerprint(b, True)
        assert spec_fingerprint(a, True) != spec_fingerprint(c, True)
        assert spec_fingerprint(a, True) != spec_fingerprint(a, False)

    def test_committed_configs_all_load(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        configs = sorted((root / "configs").glob("*.json"))
        assert len(configs) >= 7
        for path in configs:
            spec = load_spec(path)
            assert spec.kind in KIND_NAMES

    @pytest.mark.skipif(sys.version_info < (3, 11),
                        reason="TOML configs need stdlib tomllib (3.11+)")
    def test_toml_config_loads(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        spec = load_spec(root / "configs" / "flash_crowd_migration.toml")
        assert spec.kind == "live"
        assert spec.params["scenario"] == "flash-crowd"
        assert spec.params["scenario_kwargs"]["migrate_every"] == 2


class TestResolution:
    def test_topology_source(self):
        graphs = resolve_graph_sources("topology:rocketfuel-mini", quick=True)
        assert len(graphs) == 1
        label, graph = graphs[0]
        assert label == "rocketfuel-mini" and graph.n == 320

    def test_suite_source_with_limit(self):
        graphs = resolve_graph_sources({"suite": "standard", "limit": 2}, quick=True)
        assert [label for label, _ in graphs] == ["geometric", "erdos-renyi"]

    def test_family_source_threads_seed_offset(self):
        a = resolve_graph_sources({"family": "erdos-renyi", "n": 40, "seed": 1},
                                  quick=True, seed_offset=0)[0][1]
        b = resolve_graph_sources({"family": "erdos-renyi", "n": 40, "seed": 1},
                                  quick=True, seed_offset=5)[0][1]
        assert [tuple(e) for e in a.edges()] != [tuple(e) for e in b.edges()]

    def test_family_source_size_pair(self):
        g = resolve_graph_sources(
            {"family": "erdos-renyi", "n": {"quick": 30, "full": 90}, "seed": 1},
            quick=True)[0][1]
        assert g.n == 30

    def test_bad_sources_rejected(self):
        with pytest.raises(ValueError, match="topology:"):
            resolve_graph_sources("erdos-renyi", quick=True)
        with pytest.raises(ValueError, match="unknown suite"):
            resolve_graph_sources("suite:exotic", quick=True)
        with pytest.raises(ValueError, match="needs 'n'"):
            resolve_graph_sources({"family": "erdos-renyi"}, quick=True)

    def test_graph_factory_returns_fresh_instances(self):
        factory = graph_factory_from_source(
            {"family": "erdos-renyi", "n": 30, "seed": 2}, quick=True)
        a, b = factory(), factory()
        assert a is not b
        assert [tuple(e) for e in a.edges()] == [tuple(e) for e in b.edges()]

    def test_scheme_kwargs_presets(self):
        from repro.core.params import AGMParams

        resolved = resolve_scheme_kwargs({"agm": {"params": "experiment"}})
        assert resolved["agm"]["params"] == AGMParams.experiment()
        overridden = resolve_scheme_kwargs(
            {"agm": {"params": {"base": "experiment", "dense_gap": 5}}})
        assert overridden["agm"]["params"].dense_gap == 5
        with pytest.raises(ValueError, match="preset"):
            resolve_scheme_kwargs({"agm": {"params": "bogus"}})


class TestRunner:
    def test_committed_e2_config_reproduces_shim_bit_identically(self, tmp_path):
        """The acceptance criterion: configs/e2_comparison.json through the
        matrix runner equals exp_comparison.run() row for row (timing aside)."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        spec = load_spec(root / "configs" / "e2_comparison.json")
        report = run_spec(spec, out_dir=tmp_path)
        direct = exp_comparison.run(quick=True, seed=0)
        via_matrix = strip_timing(
            [{k: v for k, v in row.items() if k != "run_seed"}
             for row in report.rows])
        assert via_matrix == strip_timing(direct.rows)

    def test_resume_skips_finished_seeds(self, tmp_path):
        spec = spec_from_mapping({
            "name": "tiny", "kind": "grid", "seeds": [1],
            "params": {"graphs": [{"family": "erdos-renyi", "n": 30, "seed": 0}],
                       "schemes": ["shortest-path"], "ks": [2], "num_pairs": 10}})
        first = run_spec(spec, out_dir=tmp_path)
        assert first.ran_seeds == [1] and not first.resumed_seeds
        second = run_spec(spec, out_dir=tmp_path)
        assert second.resumed_seeds == [1] and not second.ran_seeds
        assert strip_timing(second.rows) == strip_timing(first.rows)
        third = run_spec(spec, out_dir=tmp_path, force=True)
        assert third.ran_seeds == [1]

    def test_added_seeds_keep_finished_ones(self, tmp_path):
        base = {"name": "tiny2", "kind": "grid",
                "params": {"graphs": [{"family": "erdos-renyi", "n": 30, "seed": 0}],
                           "schemes": ["shortest-path"], "ks": [2], "num_pairs": 10}}
        run_spec(spec_from_mapping({**base, "seeds": [1]}), out_dir=tmp_path)
        grown = run_spec(spec_from_mapping({**base, "seeds": [1, 4]}),
                         out_dir=tmp_path)
        assert grown.resumed_seeds == [1] and grown.ran_seeds == [4]
        assert sorted({row["run_seed"] for row in grown.rows}) == [1, 4]

    def test_param_change_invalidates_resume(self, tmp_path):
        base = {"name": "tiny3", "kind": "grid", "seeds": [1],
                "params": {"graphs": [{"family": "erdos-renyi", "n": 30, "seed": 0}],
                           "schemes": ["shortest-path"], "ks": [2], "num_pairs": 10}}
        run_spec(spec_from_mapping(base), out_dir=tmp_path)
        changed = dict(base, params=dict(base["params"], num_pairs=12))
        rerun = run_spec(spec_from_mapping(changed), out_dir=tmp_path)
        assert rerun.ran_seeds == [1] and not rerun.resumed_seeds

    def test_seed_sweep_redraws_generated_graphs(self, tmp_path):
        """Satellite fix: the run seed reaches the graph draw, so a seed
        sweep measures different graphs instead of one pinned instance."""
        spec = spec_from_mapping({
            "name": "sweep", "kind": "grid", "seeds": [0, 9],
            "params": {"graphs": [{"family": "erdos-renyi", "n": 40, "seed": 0}],
                       "schemes": ["shortest-path"], "ks": [2], "num_pairs": 12}})
        report = run_spec(spec, out_dir=tmp_path)
        by_seed = {row["run_seed"]: row for row in report.rows}
        assert by_seed[0]["aspect_ratio"] != by_seed[9]["aspect_ratio"]

    def test_artifacts_on_disk(self, tmp_path):
        spec = spec_from_mapping({
            "name": "artifacts", "kind": "grid", "seeds": [2],
            "params": {"graphs": ["topology:rocketfuel-mini"],
                       "schemes": ["shortest-path"], "ks": [2], "num_pairs": 10}})
        report = run_spec(spec, out_dir=tmp_path)
        root = tmp_path / "artifacts"
        assert (root / "seed-2" / "result.json").exists()
        assert (root / "merged.json").exists()
        assert (root / "merged.csv").exists()
        assert (root / "report.md").exists()
        payload = json.loads((root / "seed-2" / "result.json").read_text())
        assert payload["status"] == "ok" and payload["rows"]
        assert payload["rows"][0]["n"] == 320  # the pinned snapshot, verbatim
        assert "artifacts" in report.table()

    def test_live_kind_tiny_end_to_end(self, tmp_path):
        spec = spec_from_mapping({
            "name": "live-tiny", "kind": "live", "seeds": [3],
            "params": {"graph": {"family": "erdos-renyi", "n": 36, "seed": 4},
                       "schemes": ["cowen"], "scenario": "flash-crowd",
                       "k": 2, "epochs": 2, "epoch_packets": 256,
                       "stale_packets": 128}})
        report = run_spec(spec, out_dir=tmp_path)
        rows = report.rows
        assert {row["scheme"] for row in rows} == {"cowen"}
        assert all(row["delivered"] + row["unreachable"] == row["packets"]
                   for row in rows)
        assert "timelines" in report.merged.metadata


class TestCLI:
    def test_main_runs_config(self, tmp_path, capsys):
        from repro.experiments.matrix.__main__ import main

        config = tmp_path / "cli.json"
        config.write_text(json.dumps({
            "name": "cli-smoke", "kind": "grid", "seeds": [0],
            "params": {"graphs": [{"family": "erdos-renyi", "n": 30, "seed": 1}],
                       "schemes": ["shortest-path"], "ks": [2], "num_pairs": 8}}))
        code = main([str(config), "--out", str(tmp_path / "out")])
        out = capsys.readouterr().out
        assert code == 0
        assert "cli-smoke" in out and "ran=[0]" in out
