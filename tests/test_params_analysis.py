"""Tests for AGMParams and the theoretical-bound evaluators."""

import math

import pytest

from repro.core import analysis
from repro.core.params import AGMParams


class TestParams:
    def test_paper_defaults(self):
        p = AGMParams.paper()
        assert p.landmark_count_factor == 16.0
        assert p.dense_gap == 3
        assert p.sparse_shrink == 6.0

    def test_experiment_preset_scales_constant_only(self):
        p = AGMParams.experiment(landmark_count_factor=2.0)
        assert p.landmark_count_factor == 2.0
        assert p.dense_gap == AGMParams.paper().dense_gap

    def test_with_overrides(self):
        p = AGMParams.paper().with_overrides(name_bits=128)
        assert p.name_bits == 128
        assert p.dense_gap == 3

    def test_invalid_values_rejected(self):
        with pytest.raises(Exception):
            AGMParams(landmark_count_factor=0)
        with pytest.raises(Exception):
            AGMParams(dense_gap=0)
        with pytest.raises(Exception):
            AGMParams(sparse_shrink=0.5)
        with pytest.raises(Exception):
            AGMParams(name_bits=0)

    def test_nearby_landmark_count_formula(self):
        p = AGMParams.paper()
        n, k = 256, 2
        expected = math.ceil(16.0 * (n ** 1.0) * math.log2(n))
        assert p.nearby_landmark_count(n, k) == expected
        assert p.nearby_landmark_count(2, 1) >= 1

    def test_sampling_probability_in_unit_interval(self):
        p = AGMParams.paper()
        for n in (4, 64, 4096):
            for k in (1, 2, 5):
                prob = p.sampling_probability(n, k)
                assert 0 < prob <= 1.0

    def test_sampling_probability_decreases_with_n(self):
        p = AGMParams.paper()
        assert p.sampling_probability(10_000, 2) < p.sampling_probability(100, 2)

    def test_params_frozen(self):
        with pytest.raises(Exception):
            AGMParams.paper().dense_gap = 5  # type: ignore[misc]


class TestBounds:
    def test_theorem1_vs_lemma11(self):
        assert analysis.lemma11_table_bits(1000, 3) > analysis.theorem1_table_bits(1000, 3)

    def test_table_bound_decreases_in_k_for_large_n(self):
        n = 10**6
        assert analysis.theorem1_table_bits(n, 4) < analysis.theorem1_table_bits(n, 1)

    def test_stretch_bounds(self):
        assert analysis.stretch_bound(5) == 5
        assert analysis.exponential_stretch_bound(5) == 32
        assert analysis.exponential_stretch_bound(5) > analysis.stretch_bound(5)

    def test_lemma_bounds_monotone_in_size(self):
        assert analysis.lemma4_table_bits(1000, 2) > analysis.lemma4_table_bits(100, 2)
        assert analysis.lemma5_table_bits(1000, 2) > analysis.lemma5_table_bits(100, 2)
        assert analysis.lemma5_label_bits(1000, 3) > analysis.lemma5_label_bits(100, 3)

    def test_lemma6_and_lemma7_bounds(self):
        assert analysis.lemma6_membership(256, 2) == pytest.approx(2 * 2 * 16)
        assert analysis.lemma6_radius(4.0, 2) == pytest.approx((2 * 2 + 3) * 4.0)
        assert analysis.lemma7_route_bound(10.0, 2.0, 3) == pytest.approx(4 * 10 + 2 * 3 * 2.0)


class TestFits:
    def test_fit_power_law_recovers_exponent(self):
        xs = [10, 100, 1000, 10000]
        ys = [3 * x ** 0.5 for x in xs]
        fit = analysis.fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=0.01)
        assert fit.constant == pytest.approx(3.0, rel=0.05)
        assert fit.r_squared > 0.999

    def test_fit_power_law_degenerate_input(self):
        fit = analysis.fit_power_law([5], [2.0])
        assert fit.exponent == 0.0 and fit.constant == 2.0

    def test_growth_ratio(self):
        assert analysis.growth_ratio([1, 2, 4]) == [2.0, 2.0]
        assert analysis.growth_ratio([0, 3]) == [float("inf")]
        assert analysis.growth_ratio([5]) == []
