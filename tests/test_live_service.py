"""Live-network service tests: stale-state seams, repair invalidation, shm.

Covers the seams a live timeline exposes and PR 8 fixed:

* churn -> ``maintain()`` -> route parity: the fused-kernel and legacy
  lockstep engines must stay bit-identical *across a repair boundary*
  (a stale per-destination column cache or ``TreeBank`` slot matrix
  surviving an in-place patch would silently diverge here);
* the cache-invalidation API itself (``invalidate_columns`` /
  ``invalidate_caches``);
* :func:`repro.live.stale_window_outcome` — delivery accounting for
  packets routed on stale tables over a mutated graph;
* :class:`repro.live.LiveSimulator` end to end, including its
  determinism cross-checks;
* :class:`repro.traffic.shm.SharedArena` teardown when a forked worker
  dies mid-epoch: adopted attributes restored, every block unlinked.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.dynamics.events import ChurnEvent, apply_events
from repro.factory import build_scheme
from repro.graphs.generators import make_graph
from repro.graphs.shortest_paths import DistanceOracle
from repro.live import LiveSimulator, stale_window_outcome
from repro.routing.forwarding import run_lockstep
from repro.traffic.models import make_traffic_model
from repro.traffic.shm import SharedArena


def _build(scheme_name: str, n: int = 200, seed: int = 4):
    graph = make_graph("barabasi-albert", n=n, seed=seed)
    oracle = DistanceOracle(graph)
    scheme = build_scheme(scheme_name, graph, k=2, seed=1, oracle=oracle)
    return graph, oracle, scheme


def _flap_events(graph, count: int = 4):
    """Fail a handful of real edges (deterministic pick)."""
    picked = []
    for u, v, _ in graph.edges():
        picked.append(ChurnEvent("fail", u, v))
        if len(picked) == count:
            break
    return picked


@pytest.mark.parametrize("scheme_name", ["shortest-path", "thorup-zwick"])
def test_repair_route_parity_across_kernels(scheme_name):
    """Fused vs legacy walks bit-identical after an in-place repair."""
    graph, oracle, scheme = _build(scheme_name)
    # warm the live program (and any lazy caches) with a pre-churn batch
    program = scheme.compiled_forwarding()
    model = make_traffic_model("uniform", graph, seed=9)
    src, dst = model.batch(0, 512)
    run_lockstep(program, src, dst, kernels=True)

    delta = apply_events(graph, _flap_events(graph))
    scheme.maintain(delta)
    program = scheme.compiled_forwarding()

    model = make_traffic_model("uniform", graph, seed=10)
    src, dst = model.batch(0, 512)
    fused = run_lockstep(program, src, dst, kernels=True)
    legacy = run_lockstep(program, src, dst, kernels=False)
    np.testing.assert_array_equal(fused.found, legacy.found)
    np.testing.assert_array_equal(fused.final_nodes, legacy.final_nodes)
    np.testing.assert_array_equal(fused.hop_index, legacy.hop_index)
    np.testing.assert_array_equal(fused.hop_heads, legacy.hop_heads)
    np.testing.assert_array_equal(fused.hop_tails, legacy.hop_tails)
    # the post-repair model only samples connected pairs: all delivered
    assert bool(fused.found.all())
    np.testing.assert_array_equal(fused.final_nodes, dst)


def test_invalidate_columns_drops_column_cache():
    # cowen compiles to a sorted NextHopTable — the variant that carries
    # the lazily-warmed per-destination column cache
    _, _, scheme = _build("cowen")
    program = scheme.compiled_forwarding()
    table = program.tables[0]
    table._cols = np.zeros((2, 3), dtype=np.int64)
    table._col_rank = np.zeros(4, dtype=np.int64)
    table.invalidate_columns()
    assert table._cols is None
    assert table._col_rank is None


def test_tree_bank_invalidate_caches():
    _, _, scheme = _build("thorup-zwick")
    bank = scheme.compiled_forwarding().bank
    bank._slot_matrix = np.zeros((2, 2), dtype=np.int64)
    bank._path_cache = {(0, 1): np.arange(3)}
    bank.invalidate_caches()
    assert bank._slot_matrix is None
    assert bank._path_cache == {}


def test_program_invalidation_cascades():
    _, _, scheme = _build("cowen")
    program = scheme.compiled_forwarding()
    program.bank._slot_matrix = np.zeros((1, 1), dtype=np.int64)
    for table in program.tables:
        table._cols = np.zeros((1, 1), dtype=np.int64)
    program.invalidate_caches()
    assert program.bank._slot_matrix is None
    assert all(table._cols is None for table in program.tables)


def test_incremental_maintain_invalidates_live_program():
    """An in-place patch must clear the program's derived caches."""
    graph, _, scheme = _build("shortest-path")
    program = scheme.compiled_forwarding()
    # the dense table's ravel views stay coherent by construction; the
    # observable derived cache on this program is the bank's slot matrix
    program.bank._slot_matrix = np.zeros((3, 3), dtype=np.int64)
    # perturb one edge: small dirty set keeps the incremental path
    u, v, w = next(graph.edges())
    delta = apply_events(graph, [ChurnEvent("perturb", u, v, weight=2 * w)])
    report = scheme.maintain(delta)
    if report.strategy == "incremental":
        assert scheme.compiled_forwarding() is program
        assert program.bank._slot_matrix is None
    else:  # bailed to scratch: the old program must have been dropped
        assert scheme.compiled_forwarding() is not program


def test_stale_window_outcome_accounting():
    """Dead-link hops, wrong endpoints and not-found all count as loss."""
    graph = make_graph("barabasi-albert", n=30, seed=2)
    u, v, _ = next(graph.edges())
    apply_events(graph, [ChurnEvent("fail", u, v)])
    a, b, _ = next(graph.edges())  # still alive
    outcome = SimpleNamespace(
        found=np.array([True, True, True, False]),
        final_nodes=np.array([v, b, b, b], dtype=np.int64),
        # packet 0 crosses the failed link; packet 1 a live link; packet 2
        # only self-hops; packet 3 was never found
        hop_index=np.array([0, 1, 2], dtype=np.int64),
        hop_heads=np.array([u, a, b], dtype=np.int64),
        hop_tails=np.array([v, b, b], dtype=np.int64),
    )
    delivered = stale_window_outcome(
        graph, outcome, 4, np.array([v, b, b, b], dtype=np.int64))
    np.testing.assert_array_equal(delivered,
                                  np.array([False, True, True, False]))


def test_stale_window_outcome_wrong_destination():
    graph = make_graph("barabasi-albert", n=20, seed=3)
    outcome = SimpleNamespace(
        found=np.array([True]),
        final_nodes=np.array([5], dtype=np.int64),
        hop_index=np.zeros(0, dtype=np.int64),
        hop_heads=np.zeros(0, dtype=np.int64),
        hop_tails=np.zeros(0, dtype=np.int64),
    )
    delivered = stale_window_outcome(graph, outcome, 1,
                                     np.array([7], dtype=np.int64))
    assert not delivered[0]


@pytest.mark.parametrize("scheme_name", ["shortest-path", "thorup-zwick"])
def test_live_simulator_timeline(scheme_name):
    """Full timeline: window loss bounded, SLA restored, stats deterministic."""
    graph, oracle, scheme = _build(scheme_name, n=200, seed=6)
    simulator = LiveSimulator(scheme, "flap-heavy", oracle=oracle,
                              epochs=2, epoch_packets=1200, batch_size=256,
                              stale_packets=200, seed=13,
                              verify_determinism=True)
    timeline = simulator.run()
    assert len(timeline.epochs) == 3
    assert timeline.epochs[0].repair_strategy == "baseline"
    for record in timeline.epochs:
        # determinism cross-checks ran (shard split + REPRO_KERNELS=0)
        assert record.determinism_checked
        # SLA: reachable traffic fully delivered within the repair epoch
        assert record.delivery_rate == 1.0
        assert 0.0 <= record.stale_delivery_rate <= 1.0
    for record in timeline.epochs[1:]:
        assert record.events > 0
        assert record.repair_strategy in ("incremental", "full-rebuild")
    merged = timeline.merged_stats()
    assert merged.packets == 3 * 1200
    assert merged.delivered == sum(r.report.stats.delivered
                                   for r in timeline.epochs)
    summary = timeline.summary()
    assert summary["min_delivery_rate"] == 1.0
    assert summary["epochs"] == 3


def test_live_matrix_aligns_events_across_schemes():
    from repro.experiments.harness import run_live_matrix

    result = run_live_matrix(
        "live-test", ["shortest-path", "cowen"],
        lambda: make_graph("barabasi-albert", n=150, seed=5),
        scenario="flap-heavy", epochs=2, epoch_packets=600,
        batch_size=256, stale_packets=100, seed=21)
    per_epoch = {}
    for row in result.rows:
        per_epoch.setdefault(row["epoch"], set()).add(row["events"])
    # same seed => identical event sequence for every scheme
    assert all(len(counts) == 1 for counts in per_epoch.values())
    assert set(result.metadata["timelines"]) == {"shortest-path", "cowen"}


# -- SharedArena teardown under worker death -------------------------------- #

def _hang_after_read(keys, queue):  # pragma: no cover - runs in child
    queue.put(int(keys[0]))
    while True:
        time.sleep(1)


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="needs a POSIX shared-memory filesystem")
def test_shared_arena_close_survives_worker_sigkill():
    """Adopted attrs restored + every block unlinked even if a worker dies."""
    arena = SharedArena()
    holder = SimpleNamespace(_keys=np.arange(64, dtype=np.int64))
    original = holder._keys
    assert arena.adopt(holder, "_keys")
    assert holder._keys is not original
    block_names = list(arena.manifest)
    assert block_names
    for name in block_names:
        assert os.path.exists(f"/dev/shm/{name}")

    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    worker = ctx.Process(target=_hang_after_read,
                         args=(holder._keys, queue), daemon=True)
    worker.start()
    try:
        # the worker is alive and holding the shared mapping mid-"epoch"
        assert queue.get(timeout=30) == 0
        os.kill(worker.pid, signal.SIGKILL)
    finally:
        worker.join(timeout=30)
    assert not worker.is_alive()

    arena.close()
    assert holder._keys is original
    assert arena.num_blocks == 0
    for name in block_names:
        assert not os.path.exists(f"/dev/shm/{name}")
    arena.close()  # idempotent
