"""Unit tests for the rooted Tree structure."""

import pytest

from repro.graphs.trees import Tree
from repro.utils.validation import ValidationError


@pytest.fixture()
def sample_tree() -> Tree:
    #        0
    #      /   \
    #     1     2
    #    / \     \
    #   3   4     5
    parent = {1: 0, 2: 0, 3: 1, 4: 1, 5: 2}
    weights = {1: 1.0, 2: 2.0, 3: 1.5, 4: 0.5, 5: 3.0}
    return Tree(root=0, parent=parent, edge_weight=weights)


class TestConstruction:
    def test_size_and_nodes(self, sample_tree):
        assert sample_tree.size == 6
        assert sample_tree.nodes == [0, 1, 2, 3, 4, 5]
        assert len(sample_tree) == 6

    def test_single_node(self):
        t = Tree.single_node(7)
        assert t.size == 1 and t.root == 7 and t.radius() == 0.0 and t.max_edge() == 0.0

    def test_root_cannot_have_parent(self):
        with pytest.raises(ValidationError):
            Tree(root=0, parent={0: 1, 1: 0}, edge_weight={0: 1.0, 1: 1.0})

    def test_missing_weight_rejected(self):
        with pytest.raises(ValidationError):
            Tree(root=0, parent={1: 0}, edge_weight={})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValidationError):
            Tree(root=0, parent={1: 0}, edge_weight={1: 0.0})

    def test_disconnected_parent_rejected(self):
        with pytest.raises(ValidationError):
            Tree(root=0, parent={2: 9}, edge_weight={2: 1.0})

    def test_from_parent_list(self):
        t = Tree.from_parent_list(0, parents=[-1, 0, 1], weights=[0, 2.0, 3.0])
        assert t.size == 3 and t.depth[2] == pytest.approx(5.0)


class TestStructure:
    def test_depths(self, sample_tree):
        assert sample_tree.depth[0] == 0.0
        assert sample_tree.depth[3] == pytest.approx(2.5)
        assert sample_tree.depth[5] == pytest.approx(5.0)
        assert sample_tree.hop_depth[5] == 2

    def test_dfs_intervals_nested(self, sample_tree):
        t = sample_tree
        for v in t.nodes:
            assert t.dfs_in[v] <= t.dfs_out[v]
            for c in t.children[v]:
                assert t.dfs_in[v] < t.dfs_in[c] <= t.dfs_out[c] <= t.dfs_out[v]
        assert sorted(t.dfs_in.values()) == list(range(6))

    def test_subtree_sizes(self, sample_tree):
        assert sample_tree.subtree_size[0] == 6
        assert sample_tree.subtree_size[1] == 3
        assert sample_tree.subtree_size[5] == 1

    def test_radius_and_max_edge(self, sample_tree):
        assert sample_tree.radius() == pytest.approx(5.0)
        assert sample_tree.max_edge() == pytest.approx(3.0)
        assert sample_tree.total_weight() == pytest.approx(8.0)

    def test_orderings(self, sample_tree):
        by_depth = sample_tree.nodes_by_depth()
        assert by_depth[0] == 0
        depths = [sample_tree.depth[v] for v in by_depth]
        assert depths == sorted(depths)
        by_dfs = sample_tree.nodes_by_dfs()
        assert by_dfs[0] == 0

    def test_ancestry(self, sample_tree):
        t = sample_tree
        assert t.is_ancestor(0, 5) and t.is_ancestor(1, 4) and t.is_ancestor(3, 3)
        assert not t.is_ancestor(1, 5)
        assert t.child_toward(0, 4) == 1
        assert t.child_toward(1, 1) is None
        assert t.child_toward(2, 3) is None

    def test_contains(self, sample_tree):
        assert sample_tree.contains(3) and not sample_tree.contains(42)


class TestPaths:
    def test_path_to_root(self, sample_tree):
        assert sample_tree.path_to_root(3) == [3, 1, 0]
        assert sample_tree.path_to_root(0) == [0]

    def test_lca(self, sample_tree):
        assert sample_tree.lca(3, 4) == 1
        assert sample_tree.lca(3, 5) == 0
        assert sample_tree.lca(2, 5) == 2

    def test_path_between_nodes(self, sample_tree):
        assert sample_tree.path(3, 4) == [3, 1, 4]
        assert sample_tree.path(4, 5) == [4, 1, 0, 2, 5]
        assert sample_tree.path(3, 3) == [3]

    def test_tree_distance(self, sample_tree):
        assert sample_tree.tree_distance(3, 4) == pytest.approx(2.0)
        assert sample_tree.tree_distance(4, 5) == pytest.approx(6.5)
        assert sample_tree.tree_distance(0, 0) == 0.0

    def test_next_hop(self, sample_tree):
        assert sample_tree.next_hop(0, 5) == 2
        assert sample_tree.next_hop(3, 5) == 1
        assert sample_tree.next_hop(1, 4) == 4
        with pytest.raises(ValidationError):
            sample_tree.next_hop(3, 3)

    def test_tree_neighbors(self, sample_tree):
        assert sample_tree.tree_neighbors(1) == [(0, 1.0), (3, 1.5), (4, 0.5)]
        assert sample_tree.tree_neighbors(0) == [(1, 1.0), (2, 2.0)]
