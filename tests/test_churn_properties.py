"""Churn property suite: every scheme survives failure/repair cycles.

Seeded randomized properties across graph families × seeds × schemes: after
an event batch is applied and ``maintain()`` runs, every scheme's routes must
be valid walks on the mutated graph (checked against a *freshly built*
oracle and simulator, not the repaired scheme's own state) with stretch
within the scheme's advertised bound, and the scalar and lockstep engines
must stay observationally identical.  Also covers the repair plumbing itself
(full rebuild vs incremental equivalence, NextHopTable patching, TreeBank
re-slotting) and the pair-sampler edge cases churn creates (disconnected
components, shortfalls, self-pairs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.events import (
    ChurnEvent,
    apply_events,
    edge_failures,
    edge_recoveries,
    node_detachments,
    random_event_batch,
    weight_perturbations,
)
from repro.dynamics.repair import tree_is_intact
from repro.dynamics.scenario import (
    SCENARIO_NAMES,
    make_scenario,
    run_scenario_matrix,
    stale_delivery_rate,
)
from repro.factory import SCHEME_NAMES, build_scheme
from repro.graphs.generators import (
    erdos_renyi_graph,
    grid_graph,
    random_geometric_graph,
    ring_of_cliques,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, shortest_path_tree
from repro.routing.simulator import PairSamplingError, RoutingSimulator

#: advertised stretch bound per scheme at k=2 (mirrors the static suites)
STRETCH_BOUND = {
    "shortest-path": 1.0 + 1e-9,
    "cowen": 3.0 + 1e-6,
    "thorup-zwick": 3.0 + 1e-6,          # 4k - 5 at k = 2
    "agm": 16 * 2 + 8,                   # experiment-constant AGM bound
    "awerbuch-peleg": 16 * 2 + 8,
    "exponential": 16 * 2 ** 2 + 8,      # the O(2^k) family
}

FAMILIES = {
    "geometric": lambda seed: random_geometric_graph(40, seed=seed),
    "erdos-renyi": lambda seed: erdos_renyi_graph(36, seed=seed),
    "grid": lambda seed: grid_graph(6, 6, seed=seed),
    "ring-of-cliques": lambda seed: ring_of_cliques(5, 6, seed=seed),
}


def fresh_simulator(graph: WeightedGraph) -> RoutingSimulator:
    """A simulator over a *freshly built* oracle — the churn-agnostic referee."""
    return RoutingSimulator(graph, oracle=DistanceOracle(graph, backend="dense"))


def churn_rounds(graph, scheme, seed, rounds=2, batch=5,
                 kinds=("fail", "perturb", "detach")):
    """Apply ``rounds`` random event batches, repairing after each."""
    for round_index in range(rounds):
        events = random_event_batch(graph, batch, seed=seed + round_index,
                                    kinds=kinds)
        delta = apply_events(graph, events)
        report = scheme.maintain(delta)
        assert report.seconds >= 0.0
        assert report.strategy in ("incremental", "full-rebuild")
    return scheme


class TestPostRepairInvariants:
    """Walks valid against a fresh oracle; stretch within the advertised bound."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_valid_walks_and_stretch_bound_after_churn(self, family, scheme_name):
        for seed in (1, 2):
            graph = FAMILIES[family](600 + seed)
            scheme = build_scheme(scheme_name, graph, k=2, seed=seed,
                                  oracle=DistanceOracle(graph, backend="dense"))
            churn_rounds(graph, scheme, seed=40 + seed)
            sim = fresh_simulator(graph)
            pairs = sim.sample_pairs(60, seed=seed, on_shortfall="warn")
            if not pairs:
                continue
            # evaluate_batch verifies every hop of every walk via the fresh
            # CSR gather; an invalid post-repair walk raises InvalidRouteError
            report = sim.evaluate_batch(scheme, pairs)
            assert report.failures == 0
            assert report.max_stretch <= STRETCH_BOUND[scheme_name]

    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_failure_then_recovery_restores_baseline_stretch(self, scheme_name):
        graph = random_geometric_graph(40, seed=77)
        oracle = DistanceOracle(graph, backend="dense")
        scheme = build_scheme(scheme_name, graph, k=2, seed=3, oracle=oracle)
        sim = RoutingSimulator(graph, oracle=oracle)
        pairs = sim.sample_pairs(50, seed=5)
        before = sim.evaluate_batch(scheme, pairs)

        failures = edge_failures(graph, 5, seed=11)
        delta = apply_events(graph, failures)
        scheme.maintain(delta)
        mid = sim.evaluate_batch(scheme, pairs)
        assert mid.failures == 0  # still delivers inside surviving components

        recoveries = edge_recoveries([c for rec in delta.applied
                                      for c in rec.changes])
        scheme.maintain(apply_events(graph, recoveries))
        after = sim.evaluate_batch(scheme, pairs)
        assert after.failures == 0
        assert after.max_stretch <= STRETCH_BOUND[scheme_name]
        # the healed topology is the original one: stretch is back in band
        assert after.avg_stretch <= max(before.avg_stretch,
                                        STRETCH_BOUND[scheme_name])


class TestIncrementalMatchesFullRebuild:
    """Incremental repair must be observationally equal to a fresh build."""

    @pytest.mark.parametrize("scheme_name", ["shortest-path", "thorup-zwick"])
    def test_same_reports_as_scratch_instance(self, scheme_name):
        graph = random_geometric_graph(42, seed=88)
        oracle = DistanceOracle(graph, backend="dense")
        scheme = build_scheme(scheme_name, graph, k=2, seed=9, oracle=oracle)
        events = (edge_failures(graph, 4, seed=21)
                  + weight_perturbations(graph, 4, seed=22)
                  + node_detachments(graph, 1, seed=23))
        delta = apply_events(graph, events)
        report = scheme.maintain(delta)
        assert report.strategy == "incremental"

        scratch = build_scheme(scheme_name, graph, k=2, seed=9,
                               oracle=DistanceOracle(graph, backend="dense"))
        sim = fresh_simulator(graph)
        pairs = sim.sample_pairs(80, seed=13, on_shortfall="warn")
        repaired = sim.evaluate_batch(scheme, pairs).as_dict()
        rebuilt = sim.evaluate_batch(scratch, pairs).as_dict()
        # identical stretch distribution and space accounting — paths may
        # differ only between equal-cost shortest paths
        for key in ("max_stretch", "avg_stretch", "median_stretch",
                    "p95_stretch", "failures", "max_label_bits"):
            assert repaired[key] == pytest.approx(rebuilt[key], rel=1e-9), key

    def test_next_hop_table_patched_in_place(self):
        graph = random_geometric_graph(36, seed=91)
        scheme = build_scheme("shortest-path", graph, k=2, seed=1,
                              oracle=DistanceOracle(graph, backend="dense"))
        program = scheme.compiled_forwarding()
        delta = apply_events(graph, edge_failures(graph, 3, seed=2))
        report = scheme.maintain(delta)
        assert report.strategy == "incremental"
        assert report.dirty_destinations > 0
        # the compiled program object survived the event batch
        assert scheme.compiled_forwarding() is program
        # and its patched table matches the repaired scalar dicts exactly
        rebuilt = scheme.compile_forwarding().tables[0]
        live = program.tables[0]
        np.testing.assert_array_equal(live.keys, rebuilt.keys)
        np.testing.assert_array_equal(live.next_hops, rebuilt.next_hops)

    def test_tree_bank_reslots_only_dirty_trees(self):
        graph = random_geometric_graph(48, seed=92)
        scheme = build_scheme("thorup-zwick", graph, k=2, seed=4,
                              oracle=DistanceOracle(graph, backend="dense"))
        scheme.compiled_forwarding()
        old_trees = set(map(id, (r.tree for r in scheme._trees.values())))
        delta = apply_events(graph, edge_failures(graph, 2, seed=5))
        report = scheme.maintain(delta)
        assert report.strategy == "incremental"
        assert report.reused_trees > 0  # most clusters untouched by 2 failures
        reused = [r.tree for r in scheme._trees.values()
                  if id(r.tree) in old_trees]
        assert reused and all(hasattr(t, "_forwarding_slots") for t in reused)

    def test_tree_is_intact_detects_breakage(self):
        graph = grid_graph(5, 5, seed=93)
        oracle = DistanceOracle(graph, backend="dense")
        tree = shortest_path_tree(graph, 0)
        assert tree_is_intact(graph, tree, oracle.row(0))
        child = next(iter(tree.parent))
        graph.remove_edge(tree.parent[child], child)
        assert not tree_is_intact(graph, tree, oracle.row(0))


class TestScenarioMatrix:
    def test_all_named_scenarios_run_with_parity(self):
        from repro.experiments.workloads import workload_factory

        result = run_scenario_matrix(
            ["shortest-path", "cowen"], workload_factory("erdos-renyi", 48, 5),
            scenarios=SCENARIO_NAMES, epochs=3, num_pairs=40, seed=2)
        assert len(result.rows) == len(SCENARIO_NAMES) * 4 * 2
        for row in result.rows:
            assert row["parity"]
            assert row["delivery"] == pytest.approx(1.0)
            assert 0.0 <= row["stale_delivery"] <= 1.0
            assert row["repair_seconds"] >= 0.0
        # the flap scenario must actually drop deliveries while stale
        flap = [r for r in result.rows
                if r["scenario"] == "flap-heavy" and r["epoch"] > 0]
        assert any(r["stale_delivery"] < 1.0 for r in flap)

    def test_partition_and_heal_round_trips_the_topology(self):
        graph = ring_of_cliques(5, 6, seed=31)
        edges_before = sorted(graph.edges())
        scenario = make_scenario("partition-and-heal")
        rng = np.random.default_rng(7)
        for epoch in range(1, 5):
            apply_events(graph,
                         scenario.events_for_epoch(graph, epoch, 4, rng))
        assert sorted(graph.edges()) == edges_before

    def test_stale_delivery_rate_counts_broken_walks(self):
        graph = grid_graph(4, 4, seed=41)
        scheme = build_scheme("shortest-path", graph, k=2, seed=1,
                              oracle=DistanceOracle(graph, backend="dense"))
        sim = fresh_simulator(graph)
        pairs = sim.sample_pairs(40, seed=2)
        assert stale_delivery_rate(scheme, graph, pairs) == pytest.approx(1.0)
        apply_events(graph, edge_failures(graph, 6, seed=3))
        stale = stale_delivery_rate(scheme, graph, pairs)
        assert 0.0 <= stale < 1.0


class TestSamplePairsUnderChurn:
    """Pair-sampler edge cases created by failures and partitions."""

    def test_shortfall_raise_and_warn_after_total_failure(self):
        graph = erdos_renyi_graph(16, seed=51)
        failures = [ChurnEvent("fail", u, v) for u, v, _ in graph.edges()]
        apply_events(graph, failures)
        assert graph.num_edges == 0
        sim = fresh_simulator(graph)
        with pytest.raises(PairSamplingError):
            sim.sample_pairs(5, seed=0)
        with pytest.warns(UserWarning, match="no connected pair"):
            assert sim.sample_pairs(5, seed=0, on_shortfall="warn") == []

    def test_distinct_false_still_samples_self_pairs_on_isolated_nodes(self):
        graph = erdos_renyi_graph(12, seed=52)
        apply_events(graph, [ChurnEvent("fail", u, v)
                             for u, v, _ in graph.edges()])
        sim = fresh_simulator(graph)
        pairs = sim.sample_pairs(30, seed=1, distinct=False)
        assert len(pairs) == 30
        assert all(u == v for u, v in pairs)

    def test_sampling_respects_surviving_components(self):
        graph = ring_of_cliques(4, 5, seed=53)
        scenario = make_scenario("partition-and-heal", region_fraction=0.3)
        rng = np.random.default_rng(3)
        apply_events(graph, scenario.events_for_epoch(graph, 1, 2, rng))
        sim = fresh_simulator(graph)
        comp = graph.component_ids()
        pairs = sim.sample_pairs(100, seed=4, on_shortfall="warn")
        assert pairs
        for u, v in pairs:
            assert u != v and comp[u] == comp[v]

    def test_single_component_fallback_after_detachments(self):
        # detach everything except one clique: sampling must fall back to the
        # single surviving multi-node component and still fill the request
        graph = ring_of_cliques(3, 4, seed=54)
        victims = [v for v in range(4, graph.n)]
        apply_events(graph, [ChurnEvent("detach", v) for v in victims])
        sim = fresh_simulator(graph)
        comp = graph.component_ids()
        pairs = sim.sample_pairs(50, seed=5)
        assert len(pairs) == 50
        survivors = {u for pair in pairs for u in pair}
        assert survivors <= set(range(4))
        assert all(comp[u] == comp[v] for u, v in pairs)
