"""Tests for the sparse/dense neighborhood decomposition (Definitions 1-2, Lemma 2)."""

import math

import pytest

from repro.core.decomposition import NeighborhoodDecomposition
from repro.core.params import AGMParams
from repro.graphs.generators import dumbbell_graph, path_graph
from repro.graphs.shortest_paths import DistanceOracle


@pytest.fixture(scope="module", params=[2, 3])
def decomposition(request, small_geometric, geometric_oracle):
    return NeighborhoodDecomposition(small_geometric, request.param, oracle=geometric_oracle)


class TestRanges:
    def test_range_zero_is_zero(self, decomposition):
        for u in range(decomposition.n):
            assert decomposition.range(u, 0) == 0

    def test_ranges_strictly_increasing(self, decomposition):
        for u in range(decomposition.n):
            ranges = decomposition.ranges_of(u)
            assert all(a < b for a, b in zip(ranges, ranges[1:]))

    def test_growth_condition_definition1(self, decomposition):
        """|A(u,i+1)| >= n^{1/k} |A(u,i)| whenever the next range is not the sentinel."""
        growth = decomposition.growth
        for u in range(decomposition.n):
            for i in range(decomposition.k):
                nxt = decomposition.range(u, i + 1)
                if nxt >= decomposition.top_exp:
                    continue
                assert (decomposition.neighborhood_size(u, i + 1)
                        >= growth * decomposition.neighborhood_size(u, i) - 1e-6)

    def test_range_is_minimal(self, decomposition):
        """No smaller exponent already satisfies the growth condition."""
        growth = decomposition.growth
        oracle = decomposition.oracle
        for u in range(0, decomposition.n, 7):
            for i in range(decomposition.k):
                nxt = decomposition.range(u, i + 1)
                prev_size = decomposition.neighborhood_size(u, i)
                lo = decomposition.range(u, i) + 1
                for j in range(max(lo, 1), min(nxt, decomposition.max_exp + 1)):
                    size = oracle.ball_size(u, decomposition.radius_of_exponent(j))
                    assert size < growth * prev_size - 1e-6

    def test_top_level_neighborhood_covers_component(self, decomposition, geometric_oracle):
        import numpy as np

        for u in range(0, decomposition.n, 5):
            reachable = int(np.count_nonzero(np.isfinite(geometric_oracle.row(u))))
            assert decomposition.neighborhood_size(u, decomposition.k) == reachable

    def test_level_zero_neighborhood_is_singleton(self, decomposition):
        assert decomposition.neighborhood(3, 0) == [3]
        assert decomposition.neighborhood_size(3, 0) == 1

    def test_out_of_range_level_rejected(self, decomposition):
        with pytest.raises(Exception):
            decomposition.range(0, decomposition.k + 2)
        with pytest.raises(Exception):
            decomposition.is_dense(0, decomposition.k + 1)


class TestDenseSparse:
    def test_classification_matches_definition2(self, decomposition):
        gap = decomposition.params.dense_gap
        for u in range(decomposition.n):
            for i in range(decomposition.k + 1):
                a_i, a_next = decomposition.range(u, i), decomposition.range(u, i + 1)
                expected = a_i < a_next <= a_i + gap
                assert decomposition.is_dense(u, i) == expected
                assert decomposition.is_sparse(u, i) != decomposition.is_dense(u, i)

    def test_dense_plus_sparse_levels_partition(self, decomposition):
        for u in range(0, decomposition.n, 6):
            dense = set(decomposition.dense_levels(u))
            sparse = set(decomposition.sparse_levels(u))
            assert dense | sparse == set(range(decomposition.k + 1))
            assert not dense & sparse

    def test_clique_side_of_dumbbell_has_a_dense_level(self):
        g = dumbbell_graph(12, bridge_weight=4000.0, weights="unit", seed=1)
        decomposition = NeighborhoodDecomposition(g, 2, oracle=DistanceOracle(g))
        assert any(decomposition.dense_levels(u) for u in range(g.n))

    def test_path_graph_levels_mostly_sparse_for_small_k(self):
        g = path_graph(40, weights="unit", seed=1)
        decomposition = NeighborhoodDecomposition(g, 2, oracle=DistanceOracle(g))
        sparse_fraction = sum(len(decomposition.sparse_levels(u)) for u in range(g.n)) / (
            g.n * (decomposition.k + 1))
        assert sparse_fraction > 0.5


class TestGuaranteeBalls:
    def test_f_ball_inside_neighborhood(self, decomposition):
        for u in range(0, decomposition.n, 7):
            for i in range(1, decomposition.k + 1):
                assert set(decomposition.f_ball(u, i)) <= set(decomposition.neighborhood(u, i))

    def test_e_radius_formula(self, decomposition):
        u = 1
        for i in range(decomposition.k + 1):
            expected = decomposition.radius_of_exponent(
                decomposition.range(u, i + 1)) / decomposition.params.sparse_shrink
            assert decomposition.e_radius(u, i) == pytest.approx(expected)

    def test_top_level_guarantee_ball_covers_component(self, decomposition, geometric_oracle):
        import numpy as np

        for u in range(0, decomposition.n, 9):
            reachable = int(np.count_nonzero(np.isfinite(geometric_oracle.row(u))))
            assert len(decomposition.guarantee_ball(u, decomposition.k)) == reachable

    def test_lemma2_dense_neighborhoods(self, decomposition):
        """Lemma 2: i dense for u and v in F(u,i)  =>  a(u,i) in R(v)."""
        for u in range(decomposition.n):
            for i in range(decomposition.k + 1):
                if not decomposition.is_dense(u, i):
                    continue
                a_ui = decomposition.range(u, i)
                for v in decomposition.f_ball(u, i):
                    assert a_ui in decomposition.extended_range_set(v), (
                        f"Lemma 2 violated at u={u}, i={i}, v={v}")


class TestRangeSets:
    def test_range_set_contents(self, decomposition):
        for u in range(0, decomposition.n, 11):
            assert decomposition.range_set(u) == set(
                decomposition.ranges_of(u)[: decomposition.k + 1])

    def test_extended_range_window(self, decomposition):
        params = decomposition.params
        for u in range(0, decomposition.n, 11):
            extended = decomposition.extended_range_set(u)
            for a in decomposition.range_set(u):
                for j in range(max(a - params.extend_above, 0), a + params.extend_below + 1):
                    assert j in extended

    def test_extended_range_size_linear_in_k(self, decomposition):
        window = decomposition.params.extend_above + decomposition.params.extend_below + 1
        for u in range(decomposition.n):
            assert len(decomposition.extended_range_set(u)) <= (decomposition.k + 1) * window

    def test_extended_range_members_consistency(self, decomposition):
        members = decomposition.extended_range_members()
        for j, nodes in members.items():
            for v in nodes:
                assert j in decomposition.extended_range_set(v)
        for u in range(decomposition.n):
            for j in decomposition.extended_range_set(u):
                assert u in members[j]

    def test_describe_shape(self, decomposition):
        info = decomposition.describe(0)
        assert len(info["ranges"]) == decomposition.k + 2
        assert len(info["sizes"]) == decomposition.k + 1
        assert len(info["dense"]) == decomposition.k + 1
