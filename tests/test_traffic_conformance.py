"""Cross-engine conformance suite for the traffic subsystem.

Three layers of guarantees:

* **Model layer** — seeded traffic batches are bit-identical per seed,
  independent of generation order, and always connect valid (distinct,
  same-component) endpoint pairs; each model exhibits its advertised shape
  (Zipf concentration, hotspot fraction, gravity locality).
* **Statistics layer** — the streaming structures match exact recomputation:
  per-batch digests reduce to exact count/avg/min/max, histogram quantiles
  sit within their documented relative-error bound, P² within a loose
  tolerance, and splitting a stream into shards merges back to identical
  official statistics.
* **Engine layer** — stretch certification: for every scheme × graph family,
  traffic routed under the lockstep *and* sharded engines stays within the
  scheme's advertised stretch bound when checked against a **freshly built**
  oracle (never the scheme's own state), and the streamed statistics are
  identical across engines and shard counts (the determinism regression).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.factory import SCHEME_NAMES, build_scheme
from repro.graphs.generators import (
    erdos_renyi_graph,
    grid_graph,
    random_geometric_graph,
    ring_of_cliques,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle
from repro.traffic.engine import (
    batch_size_of,
    num_batches,
    processes_enabled,
    run_traffic,
    run_traffic_exact,
)
from repro.traffic.models import (
    TRAFFIC_MODEL_NAMES,
    GravityTraffic,
    HotspotTraffic,
    ZipfTraffic,
    make_traffic_model,
)
from repro.traffic.stats import (
    LOG_QUANTILE_RTOL,
    IntHistogram,
    LogHistogram,
    P2Quantile,
    TrafficStats,
)

#: advertised stretch bound per scheme at k=2 (mirrors the churn suite)
STRETCH_BOUND = {
    "shortest-path": 1.0 + 1e-9,
    "cowen": 3.0 + 1e-6,
    "thorup-zwick": 3.0 + 1e-6,          # 4k - 5 at k = 2
    "agm": 16 * 2 + 8,                   # experiment-constant AGM bound
    "awerbuch-peleg": 16 * 2 + 8,
    "exponential": 16 * 2 ** 2 + 8,      # the O(2^k) family
}

FAMILIES = {
    "geometric": lambda seed: random_geometric_graph(36, seed=seed),
    "erdos-renyi": lambda seed: erdos_renyi_graph(32, seed=seed),
    "grid": lambda seed: grid_graph(6, 6, seed=seed),
    "ring-of-cliques": lambda seed: ring_of_cliques(5, 6, seed=seed),
}

SLOW = settings(max_examples=10, deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.data_too_large])


def valid_pairs(graph: WeightedGraph, src: np.ndarray, dst: np.ndarray) -> None:
    comp = graph.component_ids()
    assert (src != dst).all()
    assert (comp[src] == comp[dst]).all()
    assert (src >= 0).all() and (src < graph.n).all()
    assert (dst >= 0).all() and (dst < graph.n).all()


# --------------------------------------------------------------------------- #
# traffic models
# --------------------------------------------------------------------------- #
class TestTrafficModels:
    @pytest.mark.parametrize("name", TRAFFIC_MODEL_NAMES)
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_batches_deterministic_and_valid(self, name, family):
        graph = FAMILIES[family](seed=901)
        model = make_traffic_model(name, graph, seed=17)
        src, dst = model.batch(5, 400)
        valid_pairs(graph, src, dst)
        # bit-identical from a fresh instance, regardless of call order
        other = make_traffic_model(name, graph, seed=17)
        other.batch(0, 400)   # generating a different batch first changes nothing
        src2, dst2 = other.batch(5, 400)
        np.testing.assert_array_equal(src, src2)
        np.testing.assert_array_equal(dst, dst2)
        # a different seed produces a different stream
        src3, _ = make_traffic_model(name, graph, seed=18).batch(5, 400)
        assert not np.array_equal(src, src3)

    def test_batches_valid_on_disconnected_graphs(self):
        graph = WeightedGraph(8, [(0, 1, 1.0), (1, 2, 2.0), (4, 5, 1.0),
                                  (5, 6, 1.5)], seed=7)
        for name in TRAFFIC_MODEL_NAMES:
            src, dst = make_traffic_model(name, graph, seed=3).batch(0, 500)
            valid_pairs(graph, src, dst)
            assert 3 not in set(src.tolist()) | set(dst.tolist())  # isolated
            assert 7 not in set(src.tolist()) | set(dst.tolist())

    def test_model_refused_without_any_connected_pair(self):
        isolated = WeightedGraph(4, [])
        with pytest.raises(ValueError, match="connected pair"):
            make_traffic_model("uniform", isolated)

    @pytest.mark.parametrize("name", TRAFFIC_MODEL_NAMES)
    def test_hot_destinations_contract(self, name):
        """Every model returns an int64 index array (possibly empty) — the
        uniform warm-cache contract the engine's hot-row cache relies on."""
        graph = random_geometric_graph(40, seed=906)
        model = make_traffic_model(name, graph, seed=4)
        hot = model.hot_destinations()
        assert isinstance(hot, np.ndarray)
        assert hot.dtype == np.int64 and hot.ndim == 1
        if hot.size:
            assert (hot >= 0).all() and (hot < graph.n).all()
            assert np.unique(hot).size == hot.size
        # skewed models advertise their head; uniform has none by definition
        if name in ("zipf", "hotspot", "gravity"):
            assert hot.size > 0
        if name == "uniform":
            assert hot.size == 0

    def test_zipf_concentrates_and_support_truncates(self):
        graph = random_geometric_graph(60, seed=905)
        model = ZipfTraffic(graph, seed=9, exponent=1.2, support=10)
        _, dst = model.batch(0, 4000)
        assert len(set(dst.tolist())) <= 10
        counts = np.bincount(dst, minlength=graph.n)
        # the most popular destination dwarfs the uniform expectation
        assert counts.max() > 5 * 4000 / graph.n

    def test_hotspot_fraction_respected(self):
        graph = random_geometric_graph(60, seed=906)
        model = HotspotTraffic(graph, seed=4, hotspots=4, fraction=0.8,
                               placement="high-degree")
        _, dst = model.batch(1, 5000)
        hot = np.isin(dst, model.hotspots)
        assert 0.72 < hot.mean() < 0.88
        degrees = [graph.degree(int(v)) for v in model.hotspots]
        assert min(degrees) >= int(np.median([graph.degree(v)
                                              for v in range(graph.n)]))

    def test_gravity_locality_stays_in_neighborhood(self):
        graph = random_geometric_graph(60, seed=907)
        model = GravityTraffic(graph, seed=5, locality=1.0, hops=2)
        src, dst = model.batch(2, 2000)
        valid_pairs(graph, src, dst)
        oracle = DistanceOracle(graph, backend="dense")
        # every packet's endpoints are within 2 hops (unweighted) of each other
        for u, v in set(zip(src.tolist(), dst.tolist())):
            neighbors = {w for w, _ in graph.neighbors(u)}
            two_hop = set(neighbors)
            for w in neighbors:
                two_hop.update(x for x, _ in graph.neighbors(w))
            assert v in two_hop
        assert np.isfinite(oracle.pair_distances(src, dst)).all()

    def test_unknown_model_rejected(self):
        graph = random_geometric_graph(20, seed=908)
        with pytest.raises(ValueError, match="unknown traffic model"):
            make_traffic_model("carrier-pigeon", graph)


# --------------------------------------------------------------------------- #
# streaming statistics
# --------------------------------------------------------------------------- #
class TestStreamingStats:
    def test_p2_tracks_exact_quantiles(self):
        rng = np.random.default_rng(10)
        values = rng.lognormal(mean=0.1, sigma=0.4, size=6000)
        for p in (0.5, 0.95, 0.99):
            sketch = P2Quantile(p)
            sketch.update_many(values)
            exact = float(np.quantile(values, p))
            assert sketch.estimate() == pytest.approx(exact, rel=0.05)

    def test_p2_exact_below_five_observations(self):
        sketch = P2Quantile(0.5)
        sketch.update_many(np.asarray([3.0, 1.0, 2.0]))
        assert sketch.estimate() == pytest.approx(2.0)

    def test_log_histogram_quantiles_within_documented_error(self):
        rng = np.random.default_rng(11)
        values = 1.0 + rng.exponential(scale=0.8, size=20000)
        hist = LogHistogram()
        hist.update(values)
        for q in (0.05, 0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q, method="inverted_cdf"))
            assert hist.quantile(q) == pytest.approx(
                exact, rel=4 * LOG_QUANTILE_RTOL + 1e-3)

    def test_int_histogram_is_exact(self):
        rng = np.random.default_rng(12)
        values = rng.integers(0, 40, size=5000)
        hist = IntHistogram()
        hist.update(values)
        for q in (0.1, 0.5, 0.95):
            exact = float(np.quantile(values, q, method="inverted_cdf"))
            assert hist.quantile(q) == exact
        assert hist.count == 5000

    def test_merge_is_partition_independent(self):
        rng = np.random.default_rng(13)
        batches = [1.0 + rng.random(300) for _ in range(8)]
        hop_batches = [rng.integers(0, 20, size=300) for _ in range(8)]

        def fill(stats: TrafficStats, indices) -> TrafficStats:
            for b in indices:
                stats.update_batch(b, batches[b], hop_batches[b],
                                   packets=300, delivered=299, failures=1,
                                   unreachable=0)
            return stats

        whole = fill(TrafficStats(), range(8))
        evens = fill(TrafficStats(), range(0, 8, 2))
        odds = fill(TrafficStats(), range(1, 8, 2))
        merged = evens.merge(odds)
        assert merged.summary(include_p2=False) \
            == whole.summary(include_p2=False)
        # the P² diagnostic stays within a loose tolerance of the exact value
        exact_p50 = float(np.quantile(np.concatenate(batches), 0.5))
        assert merged.stretch.p2_estimate(0.5) == pytest.approx(exact_p50,
                                                                rel=0.1)

    def test_duplicate_batch_rejected(self):
        stats = TrafficStats()
        stats.update_batch(0, np.asarray([1.0]), np.asarray([1]),
                           packets=1, delivered=1, failures=0, unreachable=0)
        with pytest.raises(ValueError, match="already folded"):
            stats.update_batch(0, np.asarray([1.0]), np.asarray([1]),
                               packets=1, delivered=1, failures=0,
                               unreachable=0)
        other = TrafficStats()
        other.update_batch(0, np.asarray([2.0]), np.asarray([2]),
                           packets=1, delivered=1, failures=0, unreachable=0)
        with pytest.raises(ValueError, match="overlapping"):
            stats.merge(other)

    def test_empty_stream_summary_is_defined(self):
        summary = TrafficStats().summary()
        assert summary["packets"] == 0
        assert np.isnan(summary["avg_stretch"])
        assert np.isnan(summary["stretch_p95"])


# --------------------------------------------------------------------------- #
# stretch certification (hypothesis): engines × schemes × families
# --------------------------------------------------------------------------- #
@st.composite
def certification_cases(draw):
    scheme = draw(st.sampled_from(sorted(SCHEME_BOUND_NAMES)))
    family = draw(st.sampled_from(sorted(FAMILIES)))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    model = draw(st.sampled_from(TRAFFIC_MODEL_NAMES))
    return scheme, family, seed, model


SCHEME_BOUND_NAMES = tuple(STRETCH_BOUND)
assert set(SCHEME_BOUND_NAMES) == set(SCHEME_NAMES)


class TestStretchCertification:
    @SLOW
    @given(certification_cases())
    def test_streamed_stretch_within_advertised_bound(self, case):
        scheme_name, family, seed, model_name = case
        graph = FAMILIES[family](seed=seed % 97)
        fresh = DistanceOracle(graph, backend="dense")
        scheme = build_scheme(scheme_name, graph, k=2, seed=seed % 13,
                              oracle=fresh)
        model = make_traffic_model(model_name, graph, seed=seed)
        # lockstep, single shard — scored against the fresh oracle
        single = run_traffic(scheme, model, packets=600, batch_size=256,
                             engine="lockstep", oracle=fresh)
        summary = single.summary()
        assert summary["delivered"] == 600
        assert summary["max_stretch"] <= STRETCH_BOUND[scheme_name]
        # sharded engine: identical official statistics, same bound
        sharded = run_traffic(scheme, model, packets=600, batch_size=256,
                              shards=3, processes=False, engine="lockstep",
                              oracle=fresh)
        assert sharded.summary(include_p2=False) \
            == single.summary(include_p2=False)
        # fresh-oracle walk check: the exact reference recomputes every
        # walk cost hop by hop against the live graph; its per-packet
        # stretch must reduce to the streamed headline numbers
        exact = run_traffic_exact(scheme, model, packets=600, batch_size=256,
                                  engine="lockstep", oracle=fresh)
        assert float(exact["stretch"].max()) == summary["max_stretch"]
        assert float(exact["stretch"].max()) <= STRETCH_BOUND[scheme_name]
        assert bool(exact["found"].all())


# --------------------------------------------------------------------------- #
# determinism regression: shards × engines × processes
# --------------------------------------------------------------------------- #
class TestDeterminism:
    def _scheme_and_model(self, scheme_name="cowen", seed=23):
        graph = random_geometric_graph(40, seed=802)
        oracle = DistanceOracle(graph, backend="dense")
        scheme = build_scheme(scheme_name, graph, k=2, seed=7, oracle=oracle)
        model = make_traffic_model("zipf", graph, seed=seed)
        return scheme, model, oracle

    def test_same_seed_same_run(self):
        scheme, model, oracle = self._scheme_and_model()
        a = run_traffic(scheme, model, packets=3000, batch_size=512,
                        engine="lockstep", oracle=oracle)
        b = run_traffic(scheme, model, packets=3000, batch_size=512,
                        engine="lockstep", oracle=oracle)
        assert a.summary() == b.summary()

    @pytest.mark.parametrize("shards", [2, 4])
    def test_official_stats_identical_across_shard_counts(self, shards):
        scheme, model, oracle = self._scheme_and_model()
        one = run_traffic(scheme, model, packets=3000, batch_size=512,
                          shards=1, engine="lockstep", oracle=oracle)
        many = run_traffic(scheme, model, packets=3000, batch_size=512,
                           shards=shards, processes=False, engine="lockstep",
                           oracle=oracle)
        assert one.summary(include_p2=False) == many.summary(include_p2=False)

    def test_engines_identical_including_p2(self):
        scheme, model, oracle = self._scheme_and_model()
        scalar = run_traffic(scheme, model, packets=1500, batch_size=512,
                             engine="scalar", oracle=oracle)
        lockstep = run_traffic(scheme, model, packets=1500, batch_size=512,
                               engine="lockstep", oracle=oracle)
        # engines walk identical paths, so even the order-dependent P²
        # sketches agree bit for bit at a fixed shard count
        assert scalar.summary() == lockstep.summary()

    def test_auto_engine_resolves_to_lockstep_for_compiled_schemes(self):
        scheme, model, oracle = self._scheme_and_model()
        auto = run_traffic(scheme, model, packets=800, batch_size=256,
                           engine="auto", oracle=oracle)
        assert auto.engine == "lockstep"

    @pytest.mark.skipif(not processes_enabled(),
                        reason="fork-based worker processes unavailable")
    @pytest.mark.parametrize("shards", [2, 3])
    def test_forked_workers_match_inline_shards(self, shards):
        # shards=3 matters: the P² merge folds weighted floats, so only a
        # fixed (shard-id) merge order keeps forked runs bit-identical to
        # the inline partition — queue-arrival order would be flaky here
        scheme, model, oracle = self._scheme_and_model()
        inline = run_traffic(scheme, model, packets=4000, batch_size=512,
                             shards=shards, processes=False, engine="lockstep",
                             oracle=oracle)
        forked = run_traffic(scheme, model, packets=4000, batch_size=512,
                             shards=shards, processes=True, engine="lockstep",
                             oracle=oracle)
        assert forked.processes
        assert forked.summary() == inline.summary()

    @pytest.mark.skipif(not processes_enabled(),
                        reason="fork-based worker processes unavailable")
    def test_killed_worker_raises_instead_of_hanging(self, monkeypatch):
        # a worker killed by the kernel (OOM/segfault regime) never reports;
        # the parent must detect the dead process and raise, not block on
        # the result queue forever
        import os
        import signal

        import repro.traffic.engine as traffic_engine

        scheme, model, oracle = self._scheme_and_model()
        original = traffic_engine.stream_shard

        def sabotaged(scheme, model, packets, batch_size=512,
                      engine="lockstep", shard=0, shards=1, oracle=None):
            if shard == 1:
                os.kill(os.getpid(), signal.SIGKILL)
            return original(scheme, model, packets, batch_size=batch_size,
                            engine=engine, shard=shard, shards=shards,
                            oracle=oracle)

        monkeypatch.setattr(traffic_engine, "stream_shard", sabotaged)
        with pytest.raises(RuntimeError, match="exited without reporting"):
            run_traffic(scheme, model, packets=2000, batch_size=256,
                        shards=2, processes=True, engine="lockstep",
                        oracle=oracle)

    def test_batch_partition_arithmetic(self):
        assert num_batches(1000, 256) == 4
        assert [batch_size_of(b, 1000, 256) for b in range(4)] \
            == [256, 256, 256, 232]
        with pytest.raises(ValueError):
            num_batches(0, 256)


class TestThroughputModes:
    """The perf-path knobs (fused kernels, service loop, shared memory,
    profiling, hot-row cache) must never change an official statistic."""

    def _scheme_and_model(self, scheme_name="cowen", seed=23):
        graph = random_geometric_graph(40, seed=802)
        oracle = DistanceOracle(graph, backend="dense")
        scheme = build_scheme(scheme_name, graph, k=2, seed=7, oracle=oracle)
        model = make_traffic_model("zipf", graph, seed=seed)
        return scheme, model, oracle

    def test_service_loop_matches_batch_mode(self):
        scheme, model, oracle = self._scheme_and_model()
        batch = run_traffic(scheme, model, packets=3000, batch_size=512,
                            engine="lockstep", oracle=oracle)
        for epoch in (1, 3, 16):
            svc = run_traffic(scheme, model, packets=3000, batch_size=512,
                              engine="lockstep", oracle=oracle,
                              service=True, epoch_batches=epoch)
            assert svc.service
            assert svc.summary(include_p2=False) \
                == batch.summary(include_p2=False), f"epoch={epoch}"

    def test_service_loop_sharded_matches_batch_mode(self):
        scheme, model, oracle = self._scheme_and_model()
        batch = run_traffic(scheme, model, packets=3000, batch_size=512,
                            engine="lockstep", oracle=oracle)
        svc = run_traffic(scheme, model, packets=3000, batch_size=512,
                          shards=2, processes=False, engine="lockstep",
                          oracle=oracle, service=True, epoch_batches=2)
        assert svc.summary(include_p2=False) == batch.summary(include_p2=False)

    def test_kernels_shards_engines_identical(self, monkeypatch):
        """The acceptance grid: official streamed statistics bit-identical
        across {fused, legacy} × shard counts × engines."""
        scheme, model, oracle = self._scheme_and_model()
        summaries = []
        for kernels in ("1", "0"):
            monkeypatch.setenv("REPRO_KERNELS", kernels)
            for shards in (1, 2, 4):
                rep = run_traffic(scheme, model, packets=2000, batch_size=256,
                                  shards=shards, processes=False,
                                  engine="lockstep", oracle=oracle)
                summaries.append((f"kernels={kernels} shards={shards}",
                                  rep.summary(include_p2=False)))
            scalar = run_traffic(scheme, model, packets=2000, batch_size=256,
                                 engine="scalar", oracle=oracle)
            summaries.append((f"kernels={kernels} scalar",
                              scalar.summary(include_p2=False)))
        baseline_label, baseline = summaries[0]
        for label, summary in summaries[1:]:
            assert summary == baseline, f"{label} != {baseline_label}"

    def test_shared_memory_matches_and_restores(self):
        scheme, model, oracle = self._scheme_and_model()
        program = scheme.compiled_forwarding()
        originals = [(t, getattr(t, "_keys", None), getattr(t, "_matrix", None))
                     for t in program.tables]
        plain = run_traffic(scheme, model, packets=2000, batch_size=256,
                            engine="lockstep", oracle=oracle)
        shm = run_traffic(scheme, model, packets=2000, batch_size=256,
                          engine="lockstep", oracle=oracle,
                          shared_memory=True)
        assert shm.shared_memory
        assert shm.summary() == plain.summary()
        # every adopted attribute was restored to the original array
        for table, keys, matrix in originals:
            if keys is not None:
                assert getattr(table, "_keys") is keys
            if matrix is not None:
                assert getattr(table, "_matrix") is matrix

    def test_shm_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAFFIC_SHM", "0")
        scheme, model, oracle = self._scheme_and_model()
        rep = run_traffic(scheme, model, packets=1000, batch_size=256,
                          engine="lockstep", oracle=oracle,
                          shared_memory=True)
        assert not rep.shared_memory

    def test_profile_stages_cover_pipeline(self):
        scheme, model, oracle = self._scheme_and_model()
        rep = run_traffic(scheme, model, packets=2000, batch_size=256,
                          engine="lockstep", oracle=oracle, profile=True)
        assert rep.profile is not None
        assert set(rep.profile) >= {"plan", "step", "verify", "score",
                                    "reduce"}
        assert all(seconds >= 0 for seconds in rep.profile.values())
        plain = run_traffic(scheme, model, packets=2000, batch_size=256,
                            engine="lockstep", oracle=oracle)
        assert rep.summary() == plain.summary()
        assert plain.profile is None

    @pytest.mark.skipif(not processes_enabled(),
                        reason="fork-based worker processes unavailable")
    def test_forked_service_profile_shm_matches_inline(self):
        scheme, model, oracle = self._scheme_and_model()
        inline = run_traffic(scheme, model, packets=3000, batch_size=256,
                             shards=2, processes=False, engine="lockstep",
                             oracle=oracle)
        forked = run_traffic(scheme, model, packets=3000, batch_size=256,
                             shards=2, processes=True, engine="lockstep",
                             oracle=oracle, profile=True, service=True)
        assert forked.processes and forked.shared_memory and forked.service
        assert forked.profile and forked.profile.get("step", 0) > 0
        assert forked.summary(include_p2=False) \
            == inline.summary(include_p2=False)

    def test_exact_reference_unaffected_by_hot_cache(self):
        """run_traffic (hot-row cache active) and run_traffic_exact (no
        cache) certify identical per-packet quantities."""
        scheme, model, oracle = self._scheme_and_model()
        rep = run_traffic(scheme, model, packets=2000, batch_size=256,
                          engine="lockstep", oracle=oracle)
        exact = run_traffic_exact(scheme, model, packets=2000, batch_size=256,
                                  engine="lockstep", oracle=oracle)
        s = rep.summary()
        assert int(s["delivered"]) == int(exact["found"].sum())
        assert s["max_stretch"] == float(exact["stretch"].max())
        assert s["avg_stretch"] == pytest.approx(float(exact["stretch"].mean()),
                                                 rel=1e-12)


# --------------------------------------------------------------------------- #
# harness integration
# --------------------------------------------------------------------------- #
class TestTrafficMatrix:
    def test_run_traffic_matrix_rows_mirror_run_matrix_fields(self):
        from repro.experiments.harness import run_traffic_matrix
        from repro.experiments.reporting import traffic_table

        graph = random_geometric_graph(36, seed=811)
        result = run_traffic_matrix(
            "traffic-smoke", ["cowen", "shortest-path"],
            [("geo", graph)], ks=[2], model="hotspot", packets=2000,
            batch_size=512, seed=3, backend="dense")
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["engine"] == "lockstep"
            assert row["packets"] == 2000
            assert row["delivered"] == 2000
            assert row["max_stretch"] <= STRETCH_BOUND[row["scheme"]]
            for field in ("avg_stretch", "median_stretch", "p95_stretch",
                          "failures", "pps", "avg_hops"):
                assert field in row
        table = traffic_table(result.rows)
        assert "pps" in table and "cowen" in table

    def test_traffic_suite_builds_every_model(self):
        from repro.experiments.workloads import traffic_suite

        graph = random_geometric_graph(24, seed=812)
        suite = traffic_suite(graph, seed=5)
        assert [name for name, _ in suite] == sorted(TRAFFIC_MODEL_NAMES)
        for _, model in suite:
            src, dst = model.batch(0, 50)
            valid_pairs(graph, src, dst)
