"""Unit tests for Dijkstra, APSP, shortest-path trees, and the DistanceOracle."""

import numpy as np
import pytest

from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import (
    DistanceOracle,
    all_pairs_distances,
    dijkstra,
    multi_source_distances,
    shortest_path_tree,
    single_source_distances,
)


@pytest.fixture(scope="module")
def diamond() -> WeightedGraph:
    # 0 -1- 1 -1- 3,  0 -5- 2 -1- 3 : shortest 0->3 = 2 via 1
    return WeightedGraph(4, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 5.0), (2, 3, 1.0)],
                         names=list("wxyz"))


class TestDijkstra:
    def test_distances_and_parents(self, diamond):
        dist, parent = dijkstra(diamond, 0)
        assert dist[3] == pytest.approx(2.0)
        assert parent[3] == 1 and parent[1] == 0 and parent[0] == -1

    def test_cutoff_limits_reach(self, diamond):
        dist, _ = dijkstra(diamond, 0, cutoff=1.5)
        assert np.isfinite(dist[1])
        assert not np.isfinite(dist[3])

    def test_allowed_subset_restricts_paths(self, diamond):
        dist, _ = dijkstra(diamond, 0, allowed=[0, 2, 3])
        assert dist[3] == pytest.approx(6.0)  # forced through the heavy side
        with pytest.raises(Exception):
            dijkstra(diamond, 0, allowed=[1, 2])

    def test_unreachable_is_inf(self):
        g = WeightedGraph(3, [(0, 1, 1.0)])
        dist, parent = dijkstra(g, 0)
        assert not np.isfinite(dist[2]) and parent[2] == -1

    def test_matches_scipy_single_source(self, diamond, small_geometric):
        for g in (diamond, small_geometric):
            dist, _ = dijkstra(g, 0)
            ref = single_source_distances(g, 0)
            assert np.allclose(dist, ref)


class TestAllPairs:
    def test_symmetric_zero_diagonal(self, diamond):
        mat = all_pairs_distances(diamond)
        assert np.allclose(mat, mat.T)
        assert np.allclose(np.diag(mat), 0.0)

    def test_triangle_inequality_holds(self, small_geometric):
        mat = all_pairs_distances(small_geometric)
        n = small_geometric.n
        rng = np.random.default_rng(0)
        for _ in range(200):
            a, b, c = rng.integers(0, n, size=3)
            assert mat[a, c] <= mat[a, b] + mat[b, c] + 1e-9

    def test_multi_source_rows(self, diamond):
        out = multi_source_distances(diamond, [0, 3])
        assert out.shape == (2, 4)
        assert out[0, 3] == pytest.approx(2.0)
        assert multi_source_distances(diamond, []).shape == (0, 4)

    def test_edgeless_graph(self):
        g = WeightedGraph(3, [])
        mat = all_pairs_distances(g)
        assert np.isinf(mat[0, 1]) and mat[1, 1] == 0


class TestShortestPathTree:
    def test_spans_component_and_depths_match_distances(self, small_geometric):
        tree = shortest_path_tree(small_geometric, 0)
        dist, _ = dijkstra(small_geometric, 0)
        assert tree.size == int(np.count_nonzero(np.isfinite(dist)))
        for v in tree.nodes:
            assert tree.depth[v] == pytest.approx(dist[v])

    def test_members_pruning_keeps_paths(self, diamond):
        tree = shortest_path_tree(diamond, 0, members=[3])
        # shortest path 0-1-3 must be in the tree; node 2 must not
        assert set(tree.nodes) == {0, 1, 3}

    def test_within_restriction(self, diamond):
        tree = shortest_path_tree(diamond, 0, within=[0, 2, 3])
        assert 1 not in tree.nodes
        assert tree.depth[3] == pytest.approx(6.0)


class TestDistanceOracle:
    def test_basic_queries(self, diamond):
        oracle = DistanceOracle(diamond)
        assert oracle.dist(0, 3) == pytest.approx(2.0)
        assert oracle.diameter() == pytest.approx(3.0)
        assert oracle.min_positive_distance() == pytest.approx(1.0)
        assert oracle.aspect_ratio() == pytest.approx(3.0)

    def test_ball_and_size(self, diamond):
        oracle = DistanceOracle(diamond)
        assert set(oracle.ball(0, 1.0)) == {0, 1}
        assert oracle.ball_size(0, 2.0) == 3
        assert oracle.ball_size(0, 100.0) == 4

    def test_nearest_with_ties_uses_index_order(self):
        g = WeightedGraph(4, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 2.0)])
        oracle = DistanceOracle(g)
        assert oracle.nearest(0, 2) == [0, 1]
        assert oracle.nearest(0, 3, candidates=[2, 3]) == [2, 3]

    def test_nearest_ignores_unreachable(self):
        g = WeightedGraph(3, [(0, 1, 1.0)])
        oracle = DistanceOracle(g)
        assert oracle.nearest(0, 5) == [0, 1]

    def test_nearest_zero_or_negative_count(self, geometric_oracle):
        assert geometric_oracle.nearest(0, 0) == []

    def test_eccentricity_and_farthest(self, diamond):
        oracle = DistanceOracle(diamond)
        assert oracle.eccentricity(0) == pytest.approx(3.0)
        assert oracle.farthest_of(0, [1, 3]) == pytest.approx(2.0)
        assert oracle.farthest_of(0, []) == 0.0

    def test_rejects_wrong_matrix_shape(self, diamond):
        with pytest.raises(Exception):
            DistanceOracle(diamond, matrix=np.zeros((2, 2)))
