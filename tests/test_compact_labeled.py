"""Tests for Lemma 5: compact labeled tree routing (b-heavy-child scheme)."""

import itertools
import math

import pytest

from repro.core.analysis import lemma5_label_bits, lemma5_table_bits
from repro.graphs.generators import caterpillar_tree, random_tree_graph, star_graph
from repro.graphs.shortest_paths import shortest_path_tree
from repro.graphs.trees import Tree
from repro.trees.compact_labeled import CompactTreeRouting


def tree_from_graph(graph, root=0):
    return shortest_path_tree(graph, root)


@pytest.fixture(scope="module", params=[1, 2, 3])
def k(request):
    return request.param


@pytest.fixture(scope="module")
def random_tree():
    return tree_from_graph(random_tree_graph(60, seed=9))


class TestCorrectness:
    def test_routes_optimally_on_random_tree(self, random_tree, k):
        routing = CompactTreeRouting(random_tree, k=k)
        nodes = random_tree.nodes
        for s, t in itertools.islice(itertools.product(nodes[::7], nodes[::5]), 60):
            path, cost = routing.walk(s, t)
            assert path[0] == s and path[-1] == t
            assert cost == pytest.approx(random_tree.tree_distance(s, t))

    def test_routes_on_star_and_caterpillar(self, k):
        for graph in (star_graph(20, seed=1), caterpillar_tree(6, 3, seed=1)):
            tree = tree_from_graph(graph)
            routing = CompactTreeRouting(tree, k=k)
            for t in tree.nodes[::3]:
                path, cost = routing.walk(tree.root, t)
                assert path[-1] == t
                assert cost == pytest.approx(tree.depth[t])

    def test_next_hop_at_destination_is_none(self, random_tree):
        routing = CompactTreeRouting(random_tree, k=2)
        v = random_tree.nodes[5]
        assert routing.next_hop(v, routing.label_of(v)) is None

    def test_walk_follows_tree_edges_only(self, random_tree):
        routing = CompactTreeRouting(random_tree, k=2)
        s, t = random_tree.nodes[1], random_tree.nodes[-1]
        path, _ = routing.walk(s, t)
        for a, b in zip(path, path[1:]):
            assert random_tree.parent.get(a) == b or random_tree.parent.get(b) == a

    def test_single_node_tree(self):
        routing = CompactTreeRouting(Tree.single_node(4), k=2)
        path, cost = routing.walk(4, 4)
        assert path == [4] and cost == 0.0

    def test_rejects_bad_k(self, random_tree):
        with pytest.raises(Exception):
            CompactTreeRouting(random_tree, k=0)


class TestStructure:
    def test_heavy_children_bounded_by_b(self, random_tree, k):
        routing = CompactTreeRouting(random_tree, k=k)
        for v in random_tree.nodes:
            assert len(routing.heavy_children[v]) <= routing.b

    def test_light_edges_bounded_by_k(self, random_tree, k):
        routing = CompactTreeRouting(random_tree, k=k)
        assert routing.max_light_edges() <= k

    def test_label_of_root_has_no_light_edges(self, random_tree):
        routing = CompactTreeRouting(random_tree, k=2)
        assert routing.label_of(random_tree.root).light_edges == ()

    def test_labels_unique(self, random_tree):
        routing = CompactTreeRouting(random_tree, k=2)
        labels = {routing.label_of(v).dfs_in for v in random_tree.nodes}
        assert len(labels) == random_tree.size


class TestBounds:
    def test_table_bits_within_lemma5_bound(self, random_tree, k):
        routing = CompactTreeRouting(random_tree, k=k)
        m = random_tree.size
        bound = lemma5_table_bits(m, k, constant=16.0)
        assert routing.max_table_bits() <= bound

    def test_label_bits_within_lemma5_bound(self, random_tree, k):
        routing = CompactTreeRouting(random_tree, k=k)
        m = random_tree.size
        bound = lemma5_label_bits(m, k, constant=8.0)
        assert routing.max_label_bits() <= bound

    def test_star_center_table_stays_compact_for_k1_vs_k3(self):
        # For a star, k=1 keeps all children heavy; larger k cannot increase tables.
        tree = tree_from_graph(star_graph(64, seed=2))
        t1 = CompactTreeRouting(tree, k=1).max_table_bits()
        t3 = CompactTreeRouting(tree, k=3).max_table_bits()
        assert t3 <= t1

    def test_header_bits_equals_max_label(self, random_tree):
        routing = CompactTreeRouting(random_tree, k=2)
        assert routing.header_bits() == routing.max_label_bits()
