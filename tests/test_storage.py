"""Budgeted storage layer: spill decisions, accounting, and the acceptance
parity — memmapped and in-RAM builds must produce bit-identical walks and
official traffic statistics."""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.factory import SCHEME_NAMES, build_scheme
from repro.graphs.backends import LazyDijkstraBackend
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.shortest_paths import DistanceOracle
from repro.storage import (
    SPILL_MIN_BYTES,
    alloc_array,
    is_memmap,
    memory_budget,
    persist_array,
    reset_accounting,
    storage_report,
)
from repro.traffic.engine import run_traffic, run_traffic_exact
from repro.traffic.models import make_traffic_model


@pytest.fixture(autouse=True)
def _clean_accounting():
    reset_accounting()
    yield
    reset_accounting()


class TestBudgetParsing:
    @pytest.mark.parametrize("raw,expected", [
        ("", None), ("0", None), ("none", None), ("unlimited", None),
        ("512", 512), ("4K", 4 << 10), ("2m", 2 << 20), ("1G", 1 << 30),
        ("1.5g", int(1.5 * (1 << 30))), ("3T", 3 << 40),
    ])
    def test_suffixes_and_sentinels(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", raw)
        assert memory_budget() == expected

    def test_unset_means_unlimited(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
        assert memory_budget() is None

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "lots")
        with pytest.raises(ValueError, match="REPRO_MEMORY_BUDGET"):
            memory_budget()


class TestAllocArray:
    def test_unlimited_budget_stays_in_ram(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
        out = alloc_array((1024, 1024), np.int32, fill=-1)
        assert not is_memmap(out)
        assert out.dtype == np.int32 and out.shape == (1024, 1024)
        assert np.all(out == -1)

    def test_over_budget_spills_with_fill(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1M")
        out = alloc_array((1024, 1024), np.int32, fill=-1)   # 4 MB > 1 MB
        assert is_memmap(out)
        assert np.all(out == -1)
        report = storage_report()
        assert report["spill_count"] == 1
        assert report["spilled_bytes"] == out.nbytes

    def test_small_arrays_never_spill(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1")
        out = alloc_array(SPILL_MIN_BYTES // 8 - 1, np.int8, fill=0)
        assert not is_memmap(out)
        assert np.all(out == 0)

    def test_memmap_is_writable_ndarray(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1M")
        out = alloc_array((2048, 512), np.float64)
        out[5, :] = 7.5
        assert isinstance(out, np.ndarray)
        assert np.all(out[5] == 7.5)

    def test_ram_accounting_released_on_collection(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
        out = alloc_array(1 << 21, np.int8, fill=0)
        assert storage_report()["budgeted_ram_bytes"] == out.nbytes
        del out
        gc.collect()
        assert storage_report()["budgeted_ram_bytes"] == 0


class TestPersistArray:
    def test_small_array_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1")
        arr = np.arange(16)
        assert persist_array(arr) is arr

    def test_under_budget_keeps_original(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "64M")
        arr = np.arange(1 << 19, dtype=np.int64)             # 4 MB
        assert persist_array(arr) is arr

    def test_over_budget_copies_to_memmap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1M")
        arr = np.arange(1 << 19, dtype=np.int64)
        out = persist_array(arr)
        assert is_memmap(out)
        np.testing.assert_array_equal(np.asarray(out), arr)

    def test_idempotent_on_memmaps(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1M")
        out = alloc_array((1024, 1024), np.int32, fill=3)
        assert persist_array(out) is out


class TestMemmapRamParity:
    """Acceptance: spilled builds are observationally identical to RAM ones.

    The shortest-path scheme's next-hop matrix at n=700 is ~2 MB, so a 1 MB
    budget forces it (and every persisted build array above the spill floor)
    into memmaps; the walks and official statistics must not change by a
    single bit.
    """

    @pytest.fixture(scope="class")
    def parity_graph(self):
        return barabasi_albert_graph(700, seed=77)

    @pytest.mark.parametrize("scheme_name", ["shortest-path", "cowen"])
    def test_walks_and_stats_bit_identical(self, monkeypatch, parity_graph,
                                           scheme_name):
        def outputs():
            oracle = DistanceOracle(parity_graph, backend="lazy")
            scheme = build_scheme(scheme_name, parity_graph, k=2, seed=5,
                                  oracle=oracle)
            model = make_traffic_model("zipf", parity_graph, seed=9,
                                       support=64)
            report = run_traffic(scheme, model, 6000, batch_size=1024,
                                 shards=2, processes=0, oracle=oracle)
            exact = run_traffic_exact(scheme, model, 2048, batch_size=1024,
                                      oracle=oracle)
            return report, exact

        monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
        ram_report, ram_exact = outputs()
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "64K")
        # drop the spill floor so cowen's mid-size ball/SPT arrays (a few
        # hundred KB at n=700) take the memmap path too
        monkeypatch.setattr("repro.storage.memmap.SPILL_MIN_BYTES", 1 << 16)
        reset_accounting()
        mm_report, mm_exact = outputs()

        assert storage_report()["spill_count"] > 0, \
            "budget did not force any spill; parity test is vacuous"
        assert ram_report.summary() == mm_report.summary()
        for key in ("stretch", "hops", "found", "finite"):
            np.testing.assert_array_equal(ram_exact[key], mm_exact[key])

    def test_row_store_put_get_discard_and_recycle(self):
        from repro.storage import SpilledRowStore
        from repro.storage.rowstore import EXTENT_ROWS

        # byte cap of one row still floors the capacity at one extent
        store = SpilledRowStore(row_length=8, max_bytes=8 * 8)
        assert store.capacity_rows == EXTENT_ROWS
        rows = {u: np.random.default_rng(u).random(8)
                for u in range(EXTENT_ROWS + 40)}
        for u, row in rows.items():
            store.put(u, row)
        # the cap was hit, so the 40 oldest rows were recycled (LRU order)
        assert len(store) == EXTENT_ROWS
        assert store.recycles == 40
        assert all(u not in store for u in range(40))
        for u in (40, 100, len(rows) - 1):
            got = store.get(u)
            np.testing.assert_array_equal(got, rows[u])
            got[0] = -1.0                       # copies: no write-through
            np.testing.assert_array_equal(store.get(u), rows[u])
        store.discard(40)
        assert 40 not in store
        store.clear()
        assert len(store) == 0 and store.report()["extent_bytes"] == 0

    def test_forked_workers_share_spilled_tables(self, monkeypatch,
                                                 parity_graph):
        # memmap pages are inherited across fork; the SharedArena must skip
        # re-sharing them and the sharded run must match the inline one
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1M")
        oracle = DistanceOracle(parity_graph, backend="lazy")
        scheme = build_scheme("shortest-path", parity_graph, k=2, seed=5,
                              oracle=oracle)
        model = make_traffic_model("zipf", parity_graph, seed=9, support=64)
        inline = run_traffic(scheme, model, 6000, batch_size=1024,
                             shards=2, processes=0, oracle=oracle)
        forked = run_traffic(scheme, model, 6000, batch_size=1024,
                             shards=2, processes=2, oracle=oracle)
        assert forked.processes
        assert inline.summary() == forked.summary()


class TestRowSpillParity:
    """The spillable row cache is observationally invisible.

    A lazy backend whose LRU is far too small for the working set spills
    evicted rows and restores them on the next touch; walks and official
    statistics must match a backend with an ample RAM cache bit for bit,
    for every scheme.  (Mirrors :class:`TestMemmapRamParity`, which covers
    the *build-array* spill path; this class covers the *row-cache* one.)
    """

    @pytest.fixture(scope="class")
    def graph(self):
        return barabasi_albert_graph(240, seed=21)

    def _outputs(self, graph, scheme_name, cache_rows):
        backend = LazyDijkstraBackend(graph, cache_rows=cache_rows)
        oracle = DistanceOracle(graph, backend=backend)
        scheme = build_scheme(scheme_name, graph, k=2, seed=5, oracle=oracle)
        model = make_traffic_model("zipf", graph, seed=9, support=48)
        report = run_traffic(scheme, model, 4000, batch_size=512,
                             oracle=oracle)
        exact = run_traffic_exact(scheme, model, 1024, batch_size=512,
                                  oracle=oracle)
        return report, exact, backend

    @pytest.mark.parametrize("scheme_name", list(SCHEME_NAMES))
    def test_walks_and_stats_bit_identical(self, monkeypatch, scheme_name,
                                           graph):
        monkeypatch.setenv("REPRO_ROW_SPILL", "1")
        ram_report, ram_exact, _ = self._outputs(graph, scheme_name,
                                                 cache_rows=graph.n + 8)
        spill_report, spill_exact, backend = self._outputs(graph, scheme_name,
                                                           cache_rows=8)
        assert backend.row_spills > 0, \
            "tiny cache produced no spills; parity test is vacuous"
        assert backend.row_restores > 0, \
            "no spilled row was ever restored; parity test is vacuous"
        assert ram_report.summary() == spill_report.summary()
        for key in ("stretch", "hops", "found", "finite"):
            np.testing.assert_array_equal(ram_exact[key], spill_exact[key])

    def test_disabled_store_never_spills(self, monkeypatch, graph):
        monkeypatch.setenv("REPRO_ROW_SPILL", "0")
        report, _, backend = self._outputs(graph, "cowen", cache_rows=8)
        assert backend.row_spills == 0 and backend.row_restores == 0
        assert backend.row_cache_report()["spill"] is None

    def test_spilled_rows_invalidate_on_graph_version_bump(self):
        graph = barabasi_albert_graph(160, seed=33)
        backend = LazyDijkstraBackend(graph, cache_rows=4)
        before = {u: np.array(backend.row(u)) for u in range(24)}
        assert backend.row_spills > 0      # 24 touches through a 4-row LRU
        # drop a shortcut edge that changes many shortest paths
        far = int(np.argmax(before[0]))
        graph.add_edge(0, far, graph.min_weight() / 4.0)
        reference = LazyDijkstraBackend(graph, cache_rows=4)
        for u in range(24):
            np.testing.assert_array_equal(backend.row(u), reference.row(u))
        changed = any(
            not np.array_equal(before[u], backend.row(u)) for u in range(24))
        assert changed, "edge insertion changed no distances; test is vacuous"
