"""Parity and unit tests for compiled forwarding + the lockstep engine.

The headline guarantee of the compiled-forwarding layer is *exact* parity:
for every scheme in the library the lockstep engine must return the same
walks (node for node), the same found/strategy/phase metadata, and the same
stretch statistics as the scalar ``route()`` engine, on every graph family.
"""

import numpy as np
import pytest

from repro.core.params import AGMParams
from repro.dynamics.events import ChurnEvent, apply_events
from repro.factory import SCHEME_NAMES, build_scheme
from repro.graphs.generators import random_geometric_graph
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, shortest_path_tree
from repro.routing.forwarding import (LEG_TREE, ForwardingProgram,
                                      MemoizedScalarProgram, NextHopTable,
                                      PacketPlan, TreeBank, run_lockstep,
                                      table_leg)
from repro.routing.messages import RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.routing.simulator import RoutingSimulator


FAMILIES = ("small_geometric", "small_grid", "small_cliques")


def _assert_results_match(scalar, lockstep, pairs):
    assert len(scalar) == len(lockstep) == len(pairs)
    for (u, v), s, l in zip(pairs, scalar, lockstep):
        assert l.path == s.path, f"paths differ for pair ({u}, {v})"
        assert l.found == s.found
        assert l.hops == s.hops
        assert l.strategy == s.strategy
        assert l.phases_used == s.phases_used
        assert l.max_header_bits == s.max_header_bits
        assert l.notes == s.notes
        assert l.cost == pytest.approx(s.cost)


def _pairs_for(sim, graph, seed):
    pairs = sim.sample_pairs(120, seed=seed)
    pairs += [(u, u) for u in range(0, graph.n, max(graph.n // 5, 1))]
    return pairs


class TestSchemeParity:
    """Lockstep == scalar for every scheme on >= 3 graph families."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("scheme_name",
                             [s for s in SCHEME_NAMES if s != "agm"])
    def test_baseline_parity(self, request, family, scheme_name):
        graph = request.getfixturevalue(family)
        oracle = DistanceOracle(graph)
        sim = RoutingSimulator(graph, oracle=oracle)
        scheme = build_scheme(scheme_name, graph, k=2, seed=5, oracle=oracle)
        pairs = _pairs_for(sim, graph, seed=3)
        scalar = sim.route_batch(scheme, pairs, engine="scalar")
        lockstep = sim.route_batch(scheme, pairs, engine="lockstep")
        _assert_results_match(scalar, lockstep, pairs)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_agm_parity(self, request, family):
        graph = request.getfixturevalue(family)
        oracle = DistanceOracle(graph)
        sim = RoutingSimulator(graph, oracle=oracle)
        scheme = build_scheme("agm", graph, k=2, seed=5, oracle=oracle,
                              params=AGMParams.experiment())
        pairs = _pairs_for(sim, graph, seed=4)
        scalar = sim.route_batch(scheme, pairs, engine="scalar")
        lockstep = sim.route_batch(scheme, pairs, engine="lockstep")
        _assert_results_match(scalar, lockstep, pairs)

    def test_agm_k3_parity(self, small_er, er_oracle, agm_k3):
        sim = RoutingSimulator(small_er, oracle=er_oracle)
        pairs = _pairs_for(sim, small_er, seed=6)
        scalar = sim.route_batch(agm_k3, pairs, engine="scalar")
        lockstep = sim.route_batch(agm_k3, pairs, engine="lockstep")
        _assert_results_match(scalar, lockstep, pairs)

    @pytest.mark.parametrize("scheme_name", ["agm", "thorup-zwick"])
    def test_report_parity(self, small_geometric, geometric_oracle, scheme_name):
        """Aggregate reports agree field for field (modulo the engine tag)."""
        sim = RoutingSimulator(small_geometric, oracle=geometric_oracle)
        kwargs = {"params": AGMParams.experiment()} if scheme_name == "agm" else {}
        scheme = build_scheme(scheme_name, small_geometric, k=2, seed=9,
                              oracle=geometric_oracle, **kwargs)
        pairs = sim.sample_pairs(150, seed=11)
        scalar = sim.evaluate(scheme, pairs=pairs, engine="scalar").as_dict()
        lockstep = sim.evaluate(scheme, pairs=pairs, engine="lockstep").as_dict()
        assert scalar.pop("engine") == "scalar"
        assert lockstep.pop("engine") == "lockstep"
        assert lockstep == scalar

    def test_disconnected_graph_parity(self):
        graph = WeightedGraph(9, [(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.0),
                                  (4, 5, 1.5), (6, 7, 1.0), (7, 8, 3.0)])
        oracle = DistanceOracle(graph)
        sim = RoutingSimulator(graph, oracle=oracle)
        scheme = build_scheme("agm", graph, k=2, seed=2, oracle=oracle,
                              params=AGMParams.experiment())
        pairs = [(u, v) for u in range(graph.n) for v in range(graph.n)]
        scalar = sim.route_batch(scheme, pairs, engine="scalar")
        lockstep = sim.route_batch(scheme, pairs, engine="lockstep")
        _assert_results_match(scalar, lockstep, pairs)


class _UncompiledScheme(RoutingSchemeInstance):
    """A scheme without a compiled form: exercises the memoized fallback."""

    scheme_name = "uncompiled"

    def __init__(self, graph, inner):
        super().__init__(graph)
        self._inner = inner
        self.route_calls = 0

    def route(self, source, destination_name):
        self.route_calls += 1
        return self._inner.route(source, destination_name)

    def header_bits(self):
        return self._inner.header_bits()


class TestMemoizedFallback:
    def test_replay_matches_scalar_and_memoizes(self, small_grid):
        oracle = DistanceOracle(small_grid)
        sim = RoutingSimulator(small_grid, oracle=oracle)
        inner = build_scheme("shortest-path", small_grid, oracle=oracle)
        scheme = _UncompiledScheme(small_grid, inner)
        assert isinstance(scheme.compiled_forwarding(), MemoizedScalarProgram)
        pairs = sim.sample_pairs(40, seed=1)
        pairs = pairs + pairs  # repeats must be served from the memo
        lockstep = sim.route_batch(scheme, pairs, engine="lockstep")
        assert scheme.route_calls == len(set(pairs))
        scalar = [inner.route(u, small_grid.name_of(v)) for u, v in pairs]
        _assert_results_match(scalar, lockstep, pairs)

    def test_auto_prefers_scalar_for_fallback(self, small_grid):
        oracle = DistanceOracle(small_grid)
        sim = RoutingSimulator(small_grid, oracle=oracle)
        inner = build_scheme("shortest-path", small_grid, oracle=oracle)
        scheme = _UncompiledScheme(small_grid, inner)
        assert sim.resolve_engine(scheme, "auto") == "scalar"
        assert sim.resolve_engine(inner, "auto") == "lockstep"
        report = sim.evaluate(inner, num_pairs=20, seed=2)
        assert report.engine == "lockstep"

    def test_unknown_engine_rejected(self, small_grid):
        oracle = DistanceOracle(small_grid)
        sim = RoutingSimulator(small_grid, oracle=oracle)
        inner = build_scheme("shortest-path", small_grid, oracle=oracle)
        with pytest.raises(Exception):
            sim.evaluate(inner, num_pairs=5, seed=1, engine="warp-drive")


class TestTreeBank:
    def test_walks_follow_unique_tree_paths(self, small_geometric, geometric_spt):
        tree = geometric_spt
        bank = TreeBank(small_geometric.n)
        tree_id = bank.add(tree)
        bank.freeze()
        rng = np.random.default_rng(5)
        nodes = list(tree.nodes)
        for _ in range(40):
            u, v = rng.choice(nodes, size=2)
            expected = tree.path(int(u), int(v))
            slot = bank.slot_of(tree_id, int(u))
            target = bank.slot_of(tree_id, int(v))
            off = np.asarray([bank.offsets[tree_id]])
            walked = [int(u)]
            while slot != target:
                slot = int(bank.step_toward(np.asarray([slot]),
                                            np.asarray([target]), off)[0])
                walked.append(int(bank.node_of_slot[slot]))
            assert walked == expected

    def test_membership_lookup(self, small_geometric, geometric_spt):
        bank = TreeBank(small_geometric.n)
        tree_id = bank.add(geometric_spt)
        assert bank.add(geometric_spt) == tree_id  # idempotent registration
        bank.freeze()
        inside = next(iter(geometric_spt.nodes))
        assert bank.slot_of(tree_id, inside) >= 0
        assert bank.slots_of(np.asarray([tree_id + 7]),
                             np.asarray([inside]))[0] == -1

    def test_empty_bank(self):
        bank = TreeBank(5).freeze()
        assert bank.num_trees == 0 and bank.num_slots == 0
        assert (bank.slots_of(np.asarray([0, 1]), np.asarray([2, 3])) == -1).all()


class TestNextHopTable:
    def test_lookup_hits_and_misses(self, tiny_path):
        table = NextHopTable.from_name_dicts(
            tiny_path,
            [{tiny_path.name_of(1): 1}, {tiny_path.name_of(2): 2}, {}, {}, {}, {}])
        hits = table.lookup(np.asarray([0, 1, 2]), np.asarray([1, 2, 3]))
        assert hits.tolist() == [1, 2, -1]
        assert table.lookup(np.asarray([0]), np.asarray([3]))[0] == -1

    def _random_table(self, n=40, entries=300, seed=0):
        rng = np.random.default_rng(seed)
        nodes = rng.integers(0, n, size=entries)
        dests = rng.integers(0, n, size=entries)
        keys, keep = np.unique(nodes * n + dests, return_index=True)
        return NextHopTable.from_arrays(
            n, nodes[keep], dests[keep],
            rng.integers(0, n, size=keep.size)), n

    def test_batch_view_lookup_identical_to_table(self):
        """The regression contract of the per-batch views: every lookup
        through a view — dense column cache hits and sorted fallbacks
        alike — equals ``table.lookup`` on the same pairs."""
        table, n = self._random_table(seed=3)
        rng = np.random.default_rng(4)
        queries_nodes = rng.integers(0, n, size=500)
        queries_dests = rng.integers(0, n, size=500)
        # view over a destination subset: those dests hit the column cache,
        # the rest exercise the searchsorted fallback inside one lookup
        view = table.batch_view(np.unique(queries_dests)[: n // 3])
        expected = table.lookup(queries_nodes, queries_dests)
        got = view.lookup(queries_nodes.astype(np.int64),
                          queries_dests.astype(np.int64))
        assert np.array_equal(got, expected)
        assert got.dtype == np.int64
        # growing the cache with a second view keeps lookups identical
        view2 = table.batch_view(queries_dests)
        assert np.array_equal(
            view2.lookup(queries_nodes.astype(np.int64),
                         queries_dests.astype(np.int64)), expected)

    def test_batch_view_of_empty_table(self):
        table = NextHopTable(6, np.zeros(0, dtype=np.int64),
                             np.zeros(0, dtype=np.int64))
        view = table.batch_view(np.asarray([0, 1], dtype=np.int64))
        out = view.lookup(np.asarray([0, 5], dtype=np.int64),
                          np.asarray([1, 2], dtype=np.int64))
        assert out.tolist() == [-1, -1]

    def test_dense_batch_view_matches_table(self, tiny_path):
        from repro.routing.forwarding import DenseNextHopTable

        n = 5
        matrix = np.full((n, n), -1, dtype=np.int32)
        matrix[0, 2] = 1
        matrix[1, 2] = 2
        dense = DenseNextHopTable(matrix)
        view = dense.batch_view(np.asarray([2], dtype=np.int64))
        nodes = np.asarray([0, 1, 3], dtype=np.int64)
        dests = np.asarray([2, 2, 2], dtype=np.int64)
        assert np.array_equal(view.lookup(nodes, dests),
                              dense.lookup(nodes, dests))

    def test_replace_destinations_invalidates_column_cache(self):
        """The churn-repair patch primitive must drop cached columns, or a
        repaired table would keep serving pre-repair next hops."""
        table, n = self._random_table(seed=7)
        dests = np.arange(n, dtype=np.int64)
        table.batch_view(dests)      # build columns for every destination
        victim = int(table.keys[0] % n)
        nodes = np.arange(n, dtype=np.int64)
        new_keys = nodes * n + victim
        table.replace_destinations([victim], new_keys,
                                   np.full(n, (victim + 1) % n, dtype=np.int64))
        view = table.batch_view(dests)
        got = view.lookup(nodes, np.full(n, victim, dtype=np.int64))
        assert (got == (victim + 1) % n).all()
        assert np.array_equal(got, table.lookup(nodes,
                                                np.full(n, victim)))


class TestCompiledProgramShape:
    def test_program_describe(self, agm_k2):
        program = agm_k2.compiled_forwarding()
        info = program.describe()
        assert info["label"] == "agm"
        assert info["trees"] == program.bank.num_trees > 0
        assert program.bank.num_slots > 0

    def test_program_is_cached(self, agm_k2):
        assert agm_k2.compiled_forwarding() is agm_k2.compiled_forwarding()

    def test_agm_plan_has_tree_legs(self, small_geometric, agm_k2):
        program = agm_k2.compiled_forwarding()
        sim = RoutingSimulator(small_geometric)
        (u, v), = sim.sample_pairs(1, seed=13)
        plan = program.plan(u, v)
        assert plan.legs and all(leg[0] == LEG_TREE for leg in plan.legs)

    def test_run_lockstep_without_materialize(self, small_geometric, agm_k2):
        program = agm_k2.compiled_forwarding()
        sim = RoutingSimulator(small_geometric)
        pairs = sim.sample_pairs(30, seed=17)
        sources = [u for u, _ in pairs]
        destinations = [v for _, v in pairs]
        fast = run_lockstep(program, sources, destinations, materialize=False)
        assert fast.results is None
        full = run_lockstep(program, sources, destinations, materialize=True)
        assert fast.found.tolist() == [r.found for r in full.results]
        assert np.array_equal(fast.hop_tails, full.hop_tails)


class TestLockstepEdgeCases:
    """Previously-untested ``run_lockstep`` paths: empty batches, hop-cap
    exhaustion on a broken table, and destinations detached by churn."""

    def test_empty_batch_returns_empty_outcome(self, small_grid):
        oracle = DistanceOracle(small_grid)
        sim = RoutingSimulator(small_grid, oracle=oracle)
        scheme = build_scheme("cowen", small_grid, seed=3, oracle=oracle)
        outcome = run_lockstep(scheme.compiled_forwarding(), [], [])
        assert outcome.found.size == 0
        assert outcome.hop_index.size == 0
        assert outcome.results == []
        report = sim.evaluate_batch(scheme, [], engine="lockstep")
        assert report.num_pairs == 0 and report.failures == 0

    def test_array_inputs_match_list_inputs(self, small_grid):
        oracle = DistanceOracle(small_grid)
        sim = RoutingSimulator(small_grid, oracle=oracle)
        scheme = build_scheme("cowen", small_grid, seed=3, oracle=oracle)
        program = scheme.compiled_forwarding()
        pairs = sim.sample_pairs(40, seed=9)
        sources = [u for u, _ in pairs]
        destinations = [v for _, v in pairs]
        from_lists = run_lockstep(program, sources, destinations,
                                  materialize=False)
        from_arrays = run_lockstep(program, np.asarray(sources),
                                   np.asarray(destinations), materialize=False)
        assert np.array_equal(from_lists.found, from_arrays.found)
        assert np.array_equal(from_lists.hop_tails, from_arrays.hop_tails)
        assert np.array_equal(from_lists.final_nodes, from_arrays.final_nodes)

    def test_table_hop_cap_exhaustion_advances_to_final_metadata(self):
        # a deliberately broken table: 0 <-> 1 loop toward destination 3
        graph = WeightedGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        table = NextHopTable.from_arrays(
            graph.n, np.asarray([0, 1]), np.asarray([3, 3]), np.asarray([1, 0]))

        def planner(source: int, destination: int) -> PacketPlan:
            return PacketPlan([table_leg(0, strategy="loop")], "gave-up", 2)

        program = ForwardingProgram(graph, planner, tables=[table],
                                    label="broken-loop")
        outcome = run_lockstep(program, [0], [3])
        # the n + 1 hop cap trips, the leg is abandoned, and the packet
        # finalizes with the plan's final metadata instead of spinning
        assert not outcome.found[0]
        assert outcome.hop_index.size == graph.n + 1
        assert outcome.hop_tails[:4].tolist() == [1, 0, 1, 0]
        assert outcome.strategy_names[outcome.strategy_codes[0]] == "gave-up"
        assert outcome.phases[0] == 2
        # a reachable pair through the same program still misses (entry
        # absent) and falls through with found=False rather than looping
        missing = run_lockstep(program, [2], [3])
        assert not missing.found[0] and missing.hop_index.size == 0

    @pytest.mark.parametrize("scheme_name", ["shortest-path", "cowen"])
    def test_detached_destination_after_churn_matches_scalar(self, scheme_name):
        graph = random_geometric_graph(36, seed=771)
        oracle = DistanceOracle(graph, backend="lazy")
        scheme = build_scheme(scheme_name, graph, k=2, seed=5, oracle=oracle)
        victim = max(range(graph.n), key=graph.degree) // 2 + 1
        delta = apply_events(graph, [ChurnEvent("detach", victim)])
        scheme.maintain(delta)
        sim = RoutingSimulator(graph, oracle=DistanceOracle(graph,
                                                            backend="dense"))
        sources = [u for u in range(graph.n) if u != victim][:10]
        pairs = [(u, victim) for u in sources] + [(victim, sources[0])]
        scalar = sim.route_batch(scheme, pairs, engine="scalar")
        lockstep = sim.route_batch(scheme, pairs, engine="lockstep")
        _assert_results_match(scalar, lockstep, pairs)
        assert not any(r.found for r in lockstep)
        # reachable traffic still routes under both engines after the repair
        ok_pairs = sim.sample_pairs(30, seed=6)
        ok_pairs = [(u, v) for u, v in ok_pairs if victim not in (u, v)]
        scalar = sim.route_batch(scheme, ok_pairs, engine="scalar")
        lockstep = sim.route_batch(scheme, ok_pairs, engine="lockstep")
        _assert_results_match(scalar, lockstep, ok_pairs)
        assert all(r.found for r in lockstep)


def _assert_outcomes_identical(a, b):
    """Fused and legacy outcomes must agree walk for walk, bit for bit.

    Strategy *codes* may be numbered differently (batch planners emit a
    fixed code order, the legacy flattener numbers by first encounter), so
    per-packet strategies are compared as resolved names.
    """
    assert np.array_equal(a.found, b.found)
    assert np.array_equal(a.hop_index, b.hop_index)
    assert np.array_equal(a.hop_heads, b.hop_heads)
    assert np.array_equal(a.hop_tails, b.hop_tails)
    assert np.array_equal(a.final_nodes, b.final_nodes)
    assert np.array_equal(a.phases, b.phases)
    assert np.array_equal(a.header_bits, b.header_bits)
    assert np.array_equal(a.cost_override, b.cost_override, equal_nan=True)
    names_a = [a.strategy_names[c] for c in a.strategy_codes]
    names_b = [b.strategy_names[c] for c in b.strategy_codes]
    assert names_a == names_b
    assert a.notes == b.notes


class TestFusedKernelParity:
    """``run_lockstep(kernels=True)`` == ``kernels=False`` for every scheme
    on every graph family — the fused cohort executor reproduces the legacy
    per-step loop exactly (satellite of the throughput tentpole)."""

    def _outcomes(self, scheme, graph, seed):
        oracle = DistanceOracle(graph)
        sim = RoutingSimulator(graph, oracle=oracle)
        pairs = _pairs_for(sim, graph, seed=seed)
        src = [u for u, _ in pairs]
        dst = [v for _, v in pairs]
        program = scheme.compiled_forwarding()
        fused = run_lockstep(program, src, dst, materialize=False, kernels=True)
        legacy = run_lockstep(program, src, dst, materialize=False,
                              kernels=False)
        return fused, legacy

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("scheme_name",
                             [s for s in SCHEME_NAMES if s != "agm"])
    def test_kernel_vs_legacy_walks(self, request, family, scheme_name):
        graph = request.getfixturevalue(family)
        oracle = DistanceOracle(graph)
        scheme = build_scheme(scheme_name, graph, k=2, seed=5, oracle=oracle)
        fused, legacy = self._outcomes(scheme, graph, seed=21)
        _assert_outcomes_identical(fused, legacy)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_kernel_vs_legacy_walks_agm(self, request, family):
        graph = request.getfixturevalue(family)
        oracle = DistanceOracle(graph)
        scheme = build_scheme("agm", graph, k=2, seed=5, oracle=oracle,
                              params=AGMParams.experiment())
        fused, legacy = self._outcomes(scheme, graph, seed=22)
        _assert_outcomes_identical(fused, legacy)

    @pytest.mark.parametrize("kernels", [True, False])
    def test_empty_batch(self, small_grid, kernels):
        oracle = DistanceOracle(small_grid)
        scheme = build_scheme("cowen", small_grid, seed=3, oracle=oracle)
        outcome = run_lockstep(scheme.compiled_forwarding(), [], [],
                               kernels=kernels)
        assert outcome.found.size == 0 and outcome.hop_index.size == 0

    @pytest.mark.parametrize("kernels", [True, False])
    def test_table_hop_cap(self, kernels):
        # the broken 0 <-> 1 loop: both executors must cut at n + 1 hops
        # and finalize with the plan's staged metadata
        graph = WeightedGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        table = NextHopTable.from_arrays(
            graph.n, np.asarray([0, 1]), np.asarray([3, 3]), np.asarray([1, 0]))

        def planner(source: int, destination: int) -> PacketPlan:
            return PacketPlan([table_leg(0, strategy="loop")], "gave-up", 2)

        program = ForwardingProgram(graph, planner, tables=[table],
                                    label="broken-loop")
        outcome = run_lockstep(program, [0], [3], kernels=kernels)
        assert not outcome.found[0]
        assert outcome.hop_index.size == graph.n + 1
        assert outcome.strategy_names[outcome.strategy_codes[0]] == "gave-up"

    @pytest.mark.parametrize("scheme_name", ["shortest-path", "cowen"])
    def test_detached_destination_parity(self, scheme_name):
        graph = random_geometric_graph(36, seed=771)
        oracle = DistanceOracle(graph, backend="lazy")
        scheme = build_scheme(scheme_name, graph, k=2, seed=5, oracle=oracle)
        victim = max(range(graph.n), key=graph.degree) // 2 + 1
        delta = apply_events(graph, [ChurnEvent("detach", victim)])
        scheme.maintain(delta)
        program = scheme.compiled_forwarding()
        sources = [u for u in range(graph.n) if u != victim][:10]
        src = sources + [victim]
        dst = [victim] * len(sources) + [sources[0]]
        fused = run_lockstep(program, src, dst, materialize=False, kernels=True)
        legacy = run_lockstep(program, src, dst, materialize=False,
                              kernels=False)
        _assert_outcomes_identical(fused, legacy)
        assert not fused.found.any()

    def test_env_kill_switch_forces_legacy(self, small_grid, monkeypatch):
        oracle = DistanceOracle(small_grid)
        scheme = build_scheme("cowen", small_grid, seed=3, oracle=oracle)
        program = scheme.compiled_forwarding()
        sim = RoutingSimulator(small_grid, oracle=oracle)
        pairs = sim.sample_pairs(30, seed=2)
        src = [u for u, _ in pairs]
        dst = [v for _, v in pairs]
        monkeypatch.setenv("REPRO_KERNELS", "0")
        env_off = run_lockstep(program, src, dst, materialize=False)
        explicit_off = run_lockstep(program, src, dst, materialize=False,
                                    kernels=False)
        _assert_outcomes_identical(env_off, explicit_off)


class TestReportEngineField:
    def test_as_dict_contains_engine(self, small_grid):
        oracle = DistanceOracle(small_grid)
        sim = RoutingSimulator(small_grid, oracle=oracle)
        scheme = build_scheme("cowen", small_grid, seed=3, oracle=oracle)
        report = sim.evaluate(scheme, num_pairs=25, seed=5, engine="lockstep")
        assert report.as_dict()["engine"] == "lockstep"
        assert report.engine == "lockstep"
