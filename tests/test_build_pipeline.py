"""Build parity: vectorized and parallel construction ≡ the scalar path.

The vectorized construction pipeline (shared ``BuildContext``, batched SPT
forests with distance limits, CSR-coarsened sparse covers, array-built
next-hop tables) must produce *identical* schemes to the legacy scalar
constructors (``REPRO_BUILD_MODE=scalar``), and the ``build_matrix``
worker-thread fan-out must be bit-identical to serial builds.  Identity is
asserted on routes (node for node), space accounting, headers, and the
compiled forwarding programs, for all six schemes × three graph families ×
seeds.
"""

import numpy as np
import pytest

from repro.construction.context import BuildContext, SPTJob
from repro.covers.sparse_cover import build_sparse_cover
from repro.experiments.harness import build_matrix
from repro.experiments.workloads import make_workload
from repro.factory import SCHEME_NAMES, build_scheme
from repro.graphs.shortest_paths import DistanceOracle, shortest_path_tree
from repro.routing.simulator import RoutingSimulator

FAMILIES = [("erdos-renyi", 72), ("barabasi-albert", 72), ("grid", 64)]
SEEDS = [3, 11]


def _build(name, graph, oracle, seed, mode, monkeypatch, parallel=None):
    monkeypatch.setenv("REPRO_BUILD_MODE", mode)
    context = BuildContext(graph, oracle=oracle, seed=seed, parallel=parallel)
    return build_scheme(name, graph, k=2, seed=seed, oracle=oracle,
                        context=context)


def _assert_equivalent(graph, oracle, reference, candidate, pairs):
    for (u, v) in pairs:
        a = reference.route_by_index(u, v)
        b = candidate.route_by_index(u, v)
        assert a.path == b.path
        assert a.found == b.found
        assert a.strategy == b.strategy
        assert a.cost == pytest.approx(b.cost)
    assert reference.max_table_bits() == candidate.max_table_bits()
    assert reference.avg_table_bits() == pytest.approx(candidate.avg_table_bits())
    assert reference.header_bits() == candidate.header_bits()
    assert reference.table_breakdown() == candidate.table_breakdown()
    assert reference.compiled_forwarding().describe() == \
        candidate.compiled_forwarding().describe()
    spec_a = {k: v for k, v in reference.rebuild_spec().items() if k != "oracle"}
    spec_b = {k: v for k, v in candidate.rebuild_spec().items() if k != "oracle"}
    assert spec_a == spec_b
    # lockstep engine reports agree field for field across build modes
    sim = RoutingSimulator(graph, oracle=oracle)
    rep_a = sim.evaluate(reference, pairs=pairs, engine="lockstep").as_dict()
    rep_b = sim.evaluate(candidate, pairs=pairs, engine="lockstep").as_dict()
    assert rep_a == rep_b


@pytest.mark.parametrize("family,n", FAMILIES)
@pytest.mark.parametrize("scheme", SCHEME_NAMES)
def test_vectorized_build_matches_scalar(family, n, scheme, monkeypatch):
    graph = make_workload(family, n, seed=7)
    oracle = DistanceOracle(graph)
    sim = RoutingSimulator(graph, oracle=oracle)
    pairs = sim.sample_pairs(40, seed=1)
    for seed in SEEDS:
        scalar = _build(scheme, graph, oracle, seed, "scalar", monkeypatch)
        vectorized = _build(scheme, graph, oracle, seed, "vectorized", monkeypatch)
        _assert_equivalent(graph, oracle, scalar, vectorized, pairs)


@pytest.mark.parametrize("scheme", SCHEME_NAMES)
def test_parallel_build_is_bit_identical_to_serial(scheme, monkeypatch):
    graph = make_workload("barabasi-albert", 80, seed=5)
    oracle = DistanceOracle(graph)
    sim = RoutingSimulator(graph, oracle=oracle)
    pairs = sim.sample_pairs(40, seed=2)
    serial = _build(scheme, graph, oracle, 13, "vectorized", monkeypatch,
                    parallel=None)
    parallel = _build(scheme, graph, oracle, 13, "vectorized", monkeypatch,
                      parallel=3)
    _assert_equivalent(graph, oracle, serial, parallel, pairs)


def test_build_matrix_rows_and_instances(monkeypatch):
    monkeypatch.setenv("REPRO_BUILD_MODE", "vectorized")
    graphs = [("er", make_workload("erdos-renyi", 60, seed=3)),
              ("ba", make_workload("barabasi-albert", 60, seed=4))]
    serial = build_matrix("e11", ["cowen", "thorup-zwick"], graphs, ks=[2],
                          seed=9, keep_instances=True)
    fanned = build_matrix("e11", ["cowen", "thorup-zwick"], graphs, ks=[2],
                          seed=9, parallel=3, keep_instances=True)
    assert [row["scheme"] for row in serial.rows] == \
        [row["scheme"] for row in fanned.rows]
    for row_a, row_b in zip(serial.rows, fanned.rows):
        for key in ("graph", "scheme", "k", "n", "m", "max_table_bits",
                    "avg_table_bits", "header_bits"):
            assert row_a[key] == row_b[key]
        assert row_a["build_seconds"] > 0
    # the fanned-out instances route identically to the serial ones
    for key, scheme in serial.metadata["instances"].items():
        twin = fanned.metadata["instances"][key]
        graph = scheme.graph
        sim = RoutingSimulator(graph)
        for (u, v) in sim.sample_pairs(25, seed=6):
            assert scheme.route_by_index(u, v).path == \
                twin.route_by_index(u, v).path


@pytest.mark.parametrize("scheme", SCHEME_NAMES)
def test_jit_toggle_is_bit_identical(scheme, monkeypatch):
    """``REPRO_JIT=1`` builds ≡ ``REPRO_JIT=0`` builds.

    When numba is absent the JIT path falls back to the numpy kernels and
    the assertion is trivially about the fallback being wired correctly;
    the CI jit-parity job runs this same test with numba installed, where
    it pins the compiled kernels to the numpy semantics.
    """
    graph = make_workload("barabasi-albert", 72, seed=9)
    oracle = DistanceOracle(graph)
    sim = RoutingSimulator(graph, oracle=oracle)
    pairs = sim.sample_pairs(40, seed=3)
    monkeypatch.setenv("REPRO_JIT", "0")
    plain = _build(scheme, graph, oracle, 17, "vectorized", monkeypatch)
    monkeypatch.setenv("REPRO_JIT", "1")
    jitted = _build(scheme, graph, oracle, 17, "vectorized", monkeypatch)
    _assert_equivalent(graph, oracle, plain, jitted, pairs)


@pytest.mark.parametrize("family,n", FAMILIES)
@pytest.mark.parametrize("k", [2, 3])
def test_agm_experiment_params_build_parity(family, n, k, monkeypatch):
    """Scalar ≡ vectorized for the *non-degenerate* AGM parameterization.

    At the paper's factor-16 nearby landmark count and k<=3, S(v,j) holds
    every finite member, so the vectorized membership pass exercises only
    its whole-component fast path.  A small ``landmark_count_factor``
    forces the streamed top-``nearby`` sweep — the path the e18 ladder
    runs at scale — and it must stay bit-identical to the scalar build.
    """
    from repro.core.params import AGMParams

    graph = make_workload(family, n, seed=7)
    oracle = DistanceOracle(graph)
    sim = RoutingSimulator(graph, oracle=oracle)
    pairs = sim.sample_pairs(40, seed=4)
    params = AGMParams.experiment(landmark_count_factor=0.02)
    for seed in SEEDS:
        monkeypatch.setenv("REPRO_BUILD_MODE", "scalar")
        scalar = build_scheme("agm", graph, k=k, seed=seed, oracle=oracle,
                              params=params)
        monkeypatch.setenv("REPRO_BUILD_MODE", "vectorized")
        vectorized = build_scheme("agm", graph, k=k, seed=seed, oracle=oracle,
                                  params=params)
        _assert_equivalent(graph, oracle, scalar, vectorized, pairs)


def test_membership_counts_is_ndarray_and_matches_clusters():
    graph = make_workload("erdos-renyi", 70, seed=2)
    oracle = DistanceOracle(graph)
    rho = 2.0 * oracle.min_positive_distance()
    cover = build_sparse_cover(graph, 2, rho, oracle=oracle)
    counts = cover.membership_counts(graph.n)
    assert isinstance(counts, np.ndarray)
    expected = np.zeros(graph.n, dtype=np.int64)
    for cluster in cover.clusters:
        for v in cluster.nodes:
            expected[v] += 1
    assert np.array_equal(counts, expected)
    assert cover.max_membership(graph.n) == int(expected.max())


def test_spt_forest_with_limits_matches_reference_trees():
    graph = make_workload("barabasi-albert", 90, seed=8)
    oracle = DistanceOracle(graph)
    context = BuildContext(graph, oracle=oracle)
    jobs = []
    references = []
    for root in [0, 5, 11, 40]:
        members = oracle.nearest(root, 12)
        limit = float(oracle.row(root)[members].max())
        jobs.append(SPTJob(root, members, limit))
        references.append(shortest_path_tree(graph, root, members=members))
    for tree, reference in zip(context.spt_trees(jobs), references):
        assert tree.root == reference.root
        assert tree.parent == reference.parent
        assert tree.edge_weight == reference.edge_weight
