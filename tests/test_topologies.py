"""Tests for the pinned topology snapshots and the at-scale generators."""

import json
import os

import numpy as np
import pytest

from repro.experiments.workloads import make_workload
from repro.graphs.topologies import (
    TOPOLOGY_FORMATS,
    hyperbolic_graph,
    load_manifest,
    load_topology,
    parse_caida_aslinks,
    parse_dimacs_gr,
    parse_rocketfuel_weights,
    powerlaw_cluster_graph,
    sha256_of,
    topology_names,
)
from repro.utils.validation import ValidationError


class TestParsers:
    def test_caida_aslinks(self, tmp_path):
        path = tmp_path / "links.txt"
        path.write_text("# comment\n1|2|p2c\n2|3|p2p\n\n1|2|c2p\n")
        edges = parse_caida_aslinks(str(path))
        assert ((1, 2, 1.0) in edges) and ((2, 3, 1.0) in edges)

    def test_rocketfuel_weights(self, tmp_path):
        path = tmp_path / "w.txt"
        path.write_text("pop1r1 pop1r2 2.5\npop1r2 pop2r1 10\n")
        edges = parse_rocketfuel_weights(str(path))
        assert ("pop1r1", "pop1r2", 2.5) in edges

    def test_dimacs_gr(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("c road graph\np sp 3 4\na 1 2 7\na 2 1 7\na 2 3 1\na 3 2 1\n")
        edges = parse_dimacs_gr(str(path))
        # 1-indexed ids, both directions present in the file
        assert (1, 2, 7.0) in edges and (2, 3, 1.0) in edges


class TestPinnedSnapshots:
    def test_manifest_lists_three_snapshots(self):
        names = topology_names()
        assert set(names) == {"caida-as-mini", "rocketfuel-mini", "road-mini"}
        for snap in load_manifest().values():
            assert snap.format in TOPOLOGY_FORMATS
            assert len(snap.sha256) == 64
            assert snap.nodes and snap.edges  # counts pinned, not just hashes

    @pytest.mark.parametrize("name", ["caida-as-mini", "rocketfuel-mini", "road-mini"])
    def test_snapshot_loads_connected_and_matches_pins(self, name):
        graph = load_topology(name)
        snap = load_manifest()[name]
        assert graph.n == snap.nodes and graph.num_edges == snap.edges
        assert graph.is_connected()

    def test_reload_is_bit_identical(self):
        a = load_topology("rocketfuel-mini")
        b = load_topology("rocketfuel-mini")
        assert a.n == b.n
        assert list(a.names) == list(b.names)
        assert [tuple(e) for e in a.edges()] == [tuple(e) for e in b.edges()]

    def test_tampered_snapshot_fails_checksum(self, tmp_path):
        from repro.graphs.topologies import data_dir

        snap = load_manifest()["rocketfuel-mini"]
        original = os.path.join(data_dir(), snap.file)
        copy = tmp_path / snap.file
        text = open(original, "r", encoding="utf-8").read()
        # graft a new node onto the main component so the largest-component
        # reduction cannot shed the tampering
        anchor = next(line for line in text.splitlines()
                      if line.strip() and not line.startswith("#")).split()[0]
        copy.write_text(text + f"{anchor} tampered-node 1\n")
        (tmp_path / "MANIFEST.json").write_text(json.dumps({
            "rocketfuel-mini": {
                "file": snap.file, "format": snap.format, "sha256": snap.sha256,
                "nodes": snap.nodes, "edges": snap.edges,
            }}))
        with pytest.raises(ValidationError, match="checksum"):
            load_topology("rocketfuel-mini", directory=str(tmp_path))
        # verify=False skips the hash but the pinned counts still catch it
        with pytest.raises(ValidationError, match="expected"):
            load_topology("rocketfuel-mini", directory=str(tmp_path), verify=False)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown topology"):
            load_topology("no-such-snapshot")

    def test_workload_prefix_loads_snapshot(self):
        graph = make_workload("topology:road-mini", 0)
        assert graph.n == load_manifest()["road-mini"].nodes


class TestGenerators:
    def test_hyperbolic_connected_and_deterministic(self):
        a = hyperbolic_graph(300, avg_degree=6.0, seed=7)
        b = hyperbolic_graph(300, avg_degree=6.0, seed=7)
        assert a.is_connected()
        assert a.n == b.n and a.num_edges == b.num_edges
        assert [tuple(e) for e in a.edges()] == [tuple(e) for e in b.edges()]
        # heavy-tailed degrees: the hub should far exceed the mean
        degrees = np.zeros(a.n)
        for u, v, _ in a.edges():
            degrees[int(u)] += 1
            degrees[int(v)] += 1
        assert degrees.max() >= 3 * degrees.mean()

    def test_hyperbolic_mean_degree_tracks_target(self):
        g = hyperbolic_graph(600, avg_degree=6.0, seed=11)
        measured = 2.0 * g.num_edges / g.n
        assert 3.0 <= measured <= 12.0

    def test_powerlaw_cluster_connected(self):
        g = powerlaw_cluster_graph(200, seed=5)
        assert g.is_connected() and g.n == 200

    def test_families_registered_in_workloads(self):
        for family in ("hyperbolic", "powerlaw-cluster"):
            assert make_workload(family, 120, seed=3).is_connected()
