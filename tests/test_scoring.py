"""Scoring modes: exact delivery accounting under approximation, certified
landmark upper bounds, seeded sampling determinism, and error reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.shortest_path import ShortestPathRouting
from repro.factory import build_scheme
from repro.graphs.generators import random_geometric_graph
from repro.graphs.shortest_paths import DistanceOracle
from repro.traffic.engine import run_traffic
from repro.traffic.models import make_traffic_model
from repro.traffic.scoring import (
    DEFAULT_SAMPLE_PER_BATCH,
    LandmarkScorer,
    SampledScorer,
    make_scorer,
)


@pytest.fixture(scope="module")
def scoring_graph():
    return random_geometric_graph(160, seed=41)


@pytest.fixture(scope="module")
def scoring_oracle(scoring_graph):
    return DistanceOracle(scoring_graph, backend="dense")


@pytest.fixture(scope="module")
def scoring_scheme(scoring_graph, scoring_oracle):
    return ShortestPathRouting(scoring_graph, oracle=scoring_oracle)


@pytest.fixture(scope="module")
def scoring_model(scoring_graph):
    return make_traffic_model("zipf", scoring_graph, seed=17, support=32)


def run_mode(scheme, model, oracle, mode, **kwargs):
    return run_traffic(scheme, model, 8192, batch_size=1024, shards=2,
                       processes=0, oracle=oracle, scoring=mode, **kwargs)


class TestModeRegistry:
    def test_unknown_mode_rejected(self, scoring_graph, scoring_oracle):
        with pytest.raises(Exception, match="unknown scoring mode"):
            make_scorer("fuzzy", scoring_graph, scoring_oracle)

    def test_exact_mode_is_inline(self, scoring_graph, scoring_oracle):
        assert make_scorer("exact", scoring_graph, scoring_oracle) is None

    def test_scorer_classes(self, scoring_graph, scoring_oracle):
        assert isinstance(make_scorer("sampled", scoring_graph, scoring_oracle),
                          SampledScorer)
        assert isinstance(make_scorer("landmark", scoring_graph, scoring_oracle),
                          LandmarkScorer)


class TestDeliveryAccountingExact:
    """Approximate scoring must never change the delivery counters."""

    def test_counters_identical_across_modes(self, scoring_scheme,
                                             scoring_model, scoring_oracle):
        summaries = {
            mode: run_mode(scoring_scheme, scoring_model, scoring_oracle,
                           mode).summary()
            for mode in ("exact", "sampled", "landmark")
        }
        for key in ("delivered", "failures", "unreachable", "packets",
                    "avg_hops", "max_hops"):
            assert summaries["sampled"][key] == summaries["exact"][key]
            assert summaries["landmark"][key] == summaries["exact"][key]

    def test_report_records_mode(self, scoring_scheme, scoring_model,
                                 scoring_oracle):
        report = run_mode(scoring_scheme, scoring_model, scoring_oracle,
                          "landmark")
        assert report.scoring == "landmark"
        assert report.as_row()["scoring"] == "landmark"
        exact = run_mode(scoring_scheme, scoring_model, scoring_oracle,
                         "exact")
        assert exact.scoring == "exact"


class TestSampledMode:
    def test_sample_size_and_stderr_reported(self, scoring_scheme,
                                             scoring_model, scoring_oracle):
        report = run_mode(scoring_scheme, scoring_model, scoring_oracle,
                          "sampled")
        s = report.summary()
        # 8 batches of 1024 packets, DEFAULT_SAMPLE_PER_BATCH each
        assert s["stretch_count"] == 8 * DEFAULT_SAMPLE_PER_BATCH
        assert "stretch_stderr" in s
        # shortest-path truth: sampled exact stretch is exactly 1
        assert s["avg_stretch"] == pytest.approx(1.0)

    def test_sampled_stretch_is_exact_on_sample(self, scoring_graph,
                                                scoring_oracle, scoring_model):
        scheme = build_scheme("cowen", scoring_graph, k=2, seed=3,
                              oracle=scoring_oracle)
        exact = run_mode(scheme, scoring_model, scoring_oracle, "exact").summary()
        sampled = run_mode(scheme, scoring_model, scoring_oracle,
                           "sampled").summary()
        assert sampled["max_stretch"] <= exact["max_stretch"] + 1e-12
        assert sampled["avg_stretch"] <= exact["max_stretch"] + 1e-12

    def test_deterministic_across_process_counts(self, scoring_scheme,
                                                 scoring_model, scoring_oracle):
        inline = run_mode(scoring_scheme, scoring_model, scoring_oracle,
                          "sampled").summary()
        forked = run_traffic(scoring_scheme, scoring_model, 8192,
                             batch_size=1024, shards=2, processes=2,
                             oracle=scoring_oracle, scoring="sampled").summary()
        assert inline == forked


class TestLandmarkMode:
    def test_lower_bounds_never_exceed_truth(self, scoring_graph,
                                             scoring_oracle):
        scorer = make_scorer("landmark", scoring_graph, scoring_oracle, seed=5)
        rng = np.random.default_rng(2)
        src = rng.integers(0, scoring_graph.n, size=500)
        dst = rng.integers(0, scoring_graph.n, size=500)
        bound = scorer.lower_bounds(src, dst)
        true = scoring_oracle.pair_distances(dst, src)
        mask = np.isfinite(true)
        assert np.all(bound[mask] <= true[mask] + 1e-9)
        # strictly positive wherever the pair is distinct and connected
        assert np.all(bound[mask & (src != dst)] > 0)

    def test_stretch_is_certified_upper_bound(self, scoring_scheme,
                                              scoring_model, scoring_oracle):
        exact = run_mode(scoring_scheme, scoring_model, scoring_oracle,
                         "exact").summary()
        landmark = run_mode(scoring_scheme, scoring_model, scoring_oracle,
                            "landmark").summary()
        assert landmark["avg_stretch_upper"] >= exact["avg_stretch"] - 1e-12
        assert landmark["max_stretch_upper"] >= exact["max_stretch"] - 1e-12

    def test_bounds_never_published_as_exact_stretch(self, scoring_scheme,
                                                     scoring_model,
                                                     scoring_oracle):
        """Landmark bounds live under stretch_upper_*, never plain stretch."""
        report = run_mode(scoring_scheme, scoring_model, scoring_oracle,
                          "landmark")
        assert report.stats.bounded
        s = report.summary()
        assert "avg_stretch" not in s
        assert "max_stretch" not in s
        for key in ("avg_stretch_upper", "max_stretch_upper",
                    "stretch_upper_p50", "stretch_upper_p99",
                    "stretch_upper_stderr"):
            assert key in s
        row = report.as_row()
        assert "avg_stretch" not in row
        assert row["avg_stretch_upper"] == s["avg_stretch_upper"]
        assert row["avg_score_error"] == s["avg_score_error"]

    def test_certificate_error_reported_nonnegative(self, scoring_scheme,
                                                    scoring_model,
                                                    scoring_oracle):
        s = run_mode(scoring_scheme, scoring_model, scoring_oracle,
                     "landmark").summary()
        assert s["score_error_count"] > 0
        assert s["avg_score_error"] >= -1e-12
        assert s["max_score_error"] >= s["avg_score_error"] - 1e-12

    def test_prebuilt_scorer_accepted(self, scoring_scheme, scoring_model,
                                      scoring_graph, scoring_oracle):
        scorer = make_scorer("landmark", scoring_graph, scoring_oracle,
                             seed=17, sample_per_batch=16, num_landmarks=4)
        report = run_mode(scoring_scheme, scoring_model, scoring_oracle,
                          scorer)
        assert report.scoring == "landmark"
        assert report.summary()["score_error_count"] == 8 * 16


class TestExactSummaryUnchanged:
    def test_exact_mode_has_no_error_fields(self, scoring_scheme,
                                            scoring_model, scoring_oracle):
        s = run_mode(scoring_scheme, scoring_model, scoring_oracle,
                     "exact").summary()
        assert "score_error_count" not in s
        assert "stretch_stderr" not in s
