"""Tests for the sparse and dense neighborhood routing strategies (§3.1-3.6)."""

import pytest

from repro.core.decomposition import NeighborhoodDecomposition
from repro.core.dense_strategy import DenseStrategy, translate_tree
from repro.core.landmarks import LandmarkHierarchy
from repro.core.params import AGMParams
from repro.core.sparse_strategy import SparseStrategy
from repro.graphs.generators import dumbbell_graph
from repro.graphs.shortest_paths import DistanceOracle, shortest_path_tree
from repro.routing.table import TableCollection


@pytest.fixture(scope="module")
def components(small_geometric, geometric_oracle):
    """Decomposition + landmarks + both strategies on the geometric fixture (k=2)."""
    k = 2
    params = AGMParams.experiment()
    tables = TableCollection(small_geometric.n)
    decomposition = NeighborhoodDecomposition(small_geometric, k,
                                              oracle=geometric_oracle, params=params)
    landmarks = LandmarkHierarchy(small_geometric, k, oracle=geometric_oracle,
                                  decomposition=decomposition, params=params, seed=5)
    sparse = SparseStrategy(small_geometric, k, geometric_oracle, decomposition,
                            landmarks, params, tables, seed=6)
    dense = DenseStrategy(small_geometric, k, geometric_oracle, decomposition,
                          params, tables, seed=7)
    return small_geometric, geometric_oracle, decomposition, landmarks, sparse, dense, tables


class TestSparseStrategy:
    def test_every_sparse_level_has_center_and_bound(self, components):
        graph, _, decomposition, _, sparse, _, _ = components
        for u in range(graph.n):
            for i in range(decomposition.k + 1):
                if decomposition.is_sparse(u, i):
                    assert sparse.is_applicable(u, i)
                    assert 1 <= sparse.bound(u, i)
                    assert sparse.center(u, i) in sparse.trees

    def test_source_is_in_its_center_tree(self, components):
        graph, _, decomposition, _, sparse, _, _ = components
        for u in range(graph.n):
            for i in range(decomposition.k + 1):
                if decomposition.is_sparse(u, i):
                    tree = sparse.tree_of_center(sparse.center(u, i)).tree
                    assert tree.contains(u)

    def test_route_finds_destinations_in_guarantee_ball(self, components):
        graph, oracle, decomposition, _, sparse, _, _ = components
        checked = 0
        for u in range(0, graph.n, 5):
            for i in range(decomposition.k + 1):
                if not decomposition.is_sparse(u, i):
                    continue
                for v in decomposition.e_ball(u, i)[:6]:
                    if v == u:
                        continue
                    walk, cost, found, dest = sparse.route(u, i, graph.name_of(v))
                    checked += 1
                    assert found and dest == v
                    assert walk[0] == u and walk[-1] == v
                    assert cost > 0
        assert checked > 0

    def test_route_miss_returns_to_source(self, components):
        graph, _, decomposition, _, sparse, _, _ = components
        u = 0
        level = next(i for i in range(decomposition.k + 1) if decomposition.is_sparse(u, i))
        walk, cost, found, dest = sparse.route(u, level, "name-that-does-not-exist")
        assert not found and dest is None
        assert walk[0] == u and walk[-1] == u

    def test_route_rejects_dense_level(self, components):
        graph, _, decomposition, _, sparse, _, _ = components
        dense_pairs = [(u, i) for u in range(graph.n) for i in range(decomposition.k + 1)
                       if decomposition.is_dense(u, i)]
        if not dense_pairs:
            pytest.skip("fixture has no dense levels")
        u, i = dense_pairs[0]
        with pytest.raises(Exception):
            sparse.route(u, i, graph.name_of(0))

    def test_storage_charged_to_tables(self, components):
        *_, sparse, _, tables = components
        breakdown = tables.breakdown()
        assert breakdown.get("sparse_tree_tables", 0) > 0
        assert breakdown.get("sparse_level_pointers", 0) > 0


class TestDenseStrategy:
    @pytest.fixture(scope="class")
    def dense_setup(self):
        """A unit-weight grid with k=3 reliably produces non-trivial dense levels
        (ball populations grow steadily, so consecutive ranges stay within the gap)."""
        from repro.graphs.generators import grid_graph

        graph = grid_graph(8, 8, weights="unit", seed=3)
        oracle = DistanceOracle(graph)
        k = 3
        params = AGMParams.experiment()
        tables = TableCollection(graph.n)
        decomposition = NeighborhoodDecomposition(graph, k, oracle=oracle, params=params)
        dense = DenseStrategy(graph, k, oracle, decomposition, params, tables, seed=9)
        return graph, oracle, decomposition, dense, tables

    def test_dense_levels_exist_and_are_applicable(self, dense_setup):
        graph, _, decomposition, dense, _ = dense_setup
        pairs = [(u, i) for u in range(graph.n) for i in range(1, decomposition.k + 1)
                 if decomposition.is_dense(u, i)]
        assert pairs, "grid fixture should produce non-trivial dense levels"
        applicable = [p for p in pairs if dense.is_applicable(*p)]
        assert applicable

    def test_home_tree_contains_source_and_its_root_matches(self, dense_setup):
        graph, _, decomposition, dense, _ = dense_setup
        for u in range(graph.n):
            for i in range(decomposition.k + 1):
                if decomposition.is_dense(u, i) and dense.is_applicable(u, i):
                    routing = dense.home_tree_routing(u, i)
                    assert routing.tree.contains(u)
                    assert dense.root(u, i) == routing.tree.root

    def test_route_finds_destinations_in_f_ball(self, dense_setup):
        graph, _, decomposition, dense, _ = dense_setup
        found_checks = 0
        for u in range(graph.n):
            for i in range(decomposition.k + 1):
                if not (decomposition.is_dense(u, i) and dense.is_applicable(u, i)):
                    continue
                routing = dense.home_tree_routing(u, i)
                for v in decomposition.f_ball(u, i)[:8]:
                    if v == u or not routing.tree.contains(v):
                        continue
                    walk, cost, ok, dest = dense.route(u, i, graph.name_of(v))
                    assert ok and dest == v and walk[-1] == v
                    found_checks += 1
        assert found_checks > 0

    def test_route_miss_returns_to_source(self, dense_setup):
        graph, _, decomposition, dense, _ = dense_setup
        pair = next(((u, i) for u in range(graph.n) for i in range(decomposition.k + 1)
                     if decomposition.is_dense(u, i) and dense.is_applicable(u, i)), None)
        if pair is None:
            pytest.skip("no applicable dense level")
        u, i = pair
        walk, cost, ok, dest = dense.route(u, i, "missing-name")
        assert not ok and walk[0] == u and walk[-1] == u

    def test_storage_charged(self, dense_setup):
        *_, tables = dense_setup
        breakdown = tables.breakdown()
        assert breakdown.get("dense_tree_tables", 0) > 0
        assert breakdown.get("dense_level_pointers", 0) > 0

    def test_lemma2_coverage_via_subgraphs(self, dense_setup):
        """Every node of F(u,i) belongs to the subgraph G_{a(u,i)} the cover is built on."""
        graph, _, decomposition, dense, _ = dense_setup
        members = decomposition.extended_range_members()
        for u in range(graph.n):
            for i in range(decomposition.k + 1):
                if not decomposition.is_dense(u, i):
                    continue
                j = decomposition.range(u, i)
                population = set(members.get(j, []))
                for v in decomposition.f_ball(u, i):
                    assert v in population


class TestTranslateTree:
    def test_translation_preserves_structure(self, small_geometric):
        sub, mapping = small_geometric.subgraph(list(range(0, small_geometric.n, 2)))
        local = shortest_path_tree(sub, 0)
        global_tree = translate_tree(local, mapping)
        assert global_tree.size == local.size
        assert global_tree.root == mapping[local.root]
        assert global_tree.radius() == pytest.approx(local.radius())
        for child, parent in local.parent.items():
            assert global_tree.parent[mapping[child]] == mapping[parent]
