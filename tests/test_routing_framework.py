"""Tests for the routing framework: messages, tables, simulator, scheme API."""

import pytest

from repro.graphs.graph import WeightedGraph
from repro.routing.messages import Header, RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.routing.simulator import InvalidRouteError, RoutingSimulator
from repro.routing.table import RoutingTable, TableCollection


class TestRouteResult:
    def test_hops_and_endpoints(self):
        r = RouteResult(found=True, path=[1, 2, 3], cost=2.0)
        assert r.hops == 2 and r.source == 1 and r.last_node == 3

    def test_empty_path(self):
        r = RouteResult(found=False)
        assert r.hops == 0 and r.source is None and r.last_node is None

    def test_extend_glues_shared_endpoint(self):
        r = RouteResult(found=False, path=[1, 2])
        r.extend([2, 3, 4])
        assert r.path == [1, 2, 3, 4]
        r.extend([7, 8])
        assert r.path == [1, 2, 3, 4, 7, 8]
        r.extend([])
        assert r.path == [1, 2, 3, 4, 7, 8]

    def test_header_size(self):
        h = Header(destination_name="x", phase=2, strategy="sparse", payload_bits=10)
        assert h.size_bits(name_bits=64, phase_bits=4) == 64 + 4 + 8 + 10


class TestRoutingTable:
    def test_put_get_and_bits(self):
        t = RoutingTable(0)
        t.put("a", 123, bits=10)
        t.put("b", "x", bits=5, category="labels")
        assert t.get("a") == 123 and "b" in t and len(t) == 2
        assert t.size_bits() == 15
        assert t.breakdown() == {"entries": 10, "labels": 5}

    def test_charge_without_data(self):
        t = RoutingTable(1)
        t.charge("hash", 100, count=2)
        assert t.size_bits() == 200 and len(t) == 0

    def test_collection_stats(self):
        c = TableCollection(3)
        c[0].charge("x", 10)
        c[1].charge("x", 30)
        c[2].charge("y", 20)
        assert c.max_bits() == 30
        assert c.avg_bits() == pytest.approx(20.0)
        assert c.total_bits() == 60
        assert c.breakdown() == {"x": 40, "y": 20}
        assert len(c) == 3 and c.table_bits(2) == 20


class _FixedWalkScheme(RoutingSchemeInstance):
    """Test double returning a pre-set walk."""

    scheme_name = "fixed"

    def __init__(self, graph, walk, found=True):
        super().__init__(graph)
        self._walk = walk
        self._found = found

    def route(self, source, destination_name):
        return RouteResult(found=self._found, path=list(self._walk), cost=0.0)

    def header_bits(self):
        return 8


@pytest.fixture()
def square():
    return WeightedGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)],
                         names=list("abcd"))


class TestSimulator:
    def test_sample_pairs_connected_and_distinct(self, square):
        sim = RoutingSimulator(square)
        pairs = sim.sample_pairs(50, seed=1)
        assert len(pairs) == 50
        assert all(u != v for u, v in pairs)

    def test_all_pairs_count(self, square):
        sim = RoutingSimulator(square)
        assert len(sim.all_pairs()) == 4 * 3

    def test_verify_walk_recomputes_cost(self, square):
        sim = RoutingSimulator(square)
        result = RouteResult(found=True, path=[0, 1, 2], cost=99.0)
        assert sim.verify_walk(result, 0, 2) == pytest.approx(2.0)

    def test_verify_walk_rejects_nonadjacent_step(self, square):
        sim = RoutingSimulator(square)
        result = RouteResult(found=True, path=[0, 2], cost=0.0)
        with pytest.raises(InvalidRouteError):
            sim.verify_walk(result, 0, 2)

    def test_verify_walk_rejects_wrong_start_or_end(self, square):
        sim = RoutingSimulator(square)
        with pytest.raises(InvalidRouteError):
            sim.verify_walk(RouteResult(found=True, path=[1, 2]), 0, 2)
        with pytest.raises(InvalidRouteError):
            sim.verify_walk(RouteResult(found=True, path=[0, 1]), 0, 2)

    def test_evaluate_computes_stretch(self, square):
        sim = RoutingSimulator(square)
        # A scheme that always walks 0-1-2 regardless of the request:
        scheme = _FixedWalkScheme(square, [0, 1, 2])
        report = sim.evaluate(scheme, pairs=[(0, 2)], keep_outcomes=True)
        assert report.max_stretch == pytest.approx(1.0)
        assert report.failures == 0
        assert report.outcomes[0].cost == pytest.approx(2.0)

    def test_evaluate_counts_failures(self, square):
        sim = RoutingSimulator(square)
        scheme = _FixedWalkScheme(square, [0], found=False)
        report = sim.evaluate(scheme, pairs=[(0, 2), (0, 1)])
        assert report.failures == 2
        assert report.max_stretch == float("inf")

    def test_report_as_dict_roundtrip(self, square):
        sim = RoutingSimulator(square)
        scheme = _FixedWalkScheme(square, [0, 1])
        report = sim.evaluate(scheme, pairs=[(0, 1)])
        d = report.as_dict()
        assert d["scheme"] == "fixed" and d["num_pairs"] == 1

    def test_scheme_api_describe(self, square):
        scheme = _FixedWalkScheme(square, [0, 1])
        info = scheme.describe()
        assert info["scheme"] == "fixed"
        assert info["n"] == 4
        assert scheme.route_by_index(0, 1).path == [0, 1]
