"""Tests for the experiment harness, workloads, reporting and the exp_* modules."""

import pytest

from repro.experiments import exp_comparison, exp_lemma_properties, exp_scale_free
from repro.experiments.harness import ExperimentResult, evaluate_scheme_on_graph, run_matrix
from repro.experiments.reporting import format_series, format_table, results_to_csv
from repro.experiments.workloads import (
    WorkloadSpec,
    aspect_ratio_suite,
    full_mode,
    make_workload,
    standard_suite,
)


class TestWorkloads:
    def test_standard_suite_builds_connected_graphs(self):
        for spec in standard_suite(quick=True):
            g = spec.build(quick=True)
            assert g.is_connected()
            assert g.n >= 30

    def test_workload_spec_sizes(self):
        spec = WorkloadSpec("x", "geometric", quick_n=30, full_n=60, seed=1)
        assert spec.build(quick=True).n <= spec.build(quick=False).n

    def test_make_workload_families(self):
        for family in ("geometric", "grid", "erdos-renyi"):
            assert make_workload(family, 36, seed=2).is_connected()
        with pytest.raises(ValueError):
            make_workload("unknown", 10)

    def test_aspect_ratio_suite_monotone(self):
        from repro.graphs.metrics import aspect_ratio

        suite = aspect_ratio_suite([1e2, 1e5], n=30, seed=5)
        assert len(suite) == 2
        deltas = [aspect_ratio(g) for _, g in suite]
        assert deltas[1] > deltas[0]

    def test_full_mode_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        assert not full_mode()
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert full_mode()


class TestHarness:
    def test_evaluate_scheme_on_graph_fields(self, small_er, er_oracle):
        row = evaluate_scheme_on_graph("shortest-path", small_er, k=2, num_pairs=30,
                                       seed=1, oracle=er_oracle)
        assert row["scheme"] == "shortest-path"
        assert row["failures"] == 0
        assert row["max_stretch"] == pytest.approx(1.0)
        assert row["max_table_bits"] > 0
        assert row["build_seconds"] >= 0

    def test_run_matrix_row_count_and_filter(self, small_er):
        result = run_matrix("t", schemes=["shortest-path", "cowen"],
                            graphs=[("er", small_er)], ks=[2], num_pairs=20, seed=1)
        assert len(result.rows) == 2
        assert {r["scheme"] for r in result.rows} == {"shortest-path", "cowen"}
        assert len(result.filter(scheme="cowen")) == 1
        assert result.column("n") == [small_er.n, small_er.n]

    def test_experiment_result_add_row(self):
        r = ExperimentResult("x")
        r.add_row(a=1, b=2)
        assert r.rows == [{"a": 1, "b": 2}]

    def test_run_matrix_parallel_matches_serial(self, small_er, small_geometric):
        kwargs = dict(schemes=["shortest-path", "cowen", "thorup-zwick"],
                      graphs=[("er", small_er), ("geo", small_geometric)],
                      ks=[1, 2], num_pairs=20, seed=3)
        serial = run_matrix("serial", **kwargs)
        fanned = run_matrix("parallel", parallel=4, **kwargs)
        assert len(fanned.rows) == len(serial.rows) == 12
        # identical measurements in identical (deterministic) order; only the
        # wall-time column may differ between runs
        for left, right in zip(serial.rows, fanned.rows):
            left = {k: v for k, v in left.items() if k != "build_seconds"}
            right = {k: v for k, v in right.items() if k != "build_seconds"}
            assert left == right

    def test_run_matrix_lazy_backend_matches_dense(self, small_er):
        kwargs = dict(schemes=["shortest-path"], graphs=[("er", small_er)],
                      ks=[2], num_pairs=15, seed=5)
        dense = run_matrix("dense", backend="dense", **kwargs)
        lazy = run_matrix("lazy", backend="lazy", **kwargs)
        for left, right in zip(dense.rows, lazy.rows):
            left = {k: v for k, v in left.items() if k != "build_seconds"}
            right = {k: v for k, v in right.items() if k != "build_seconds"}
            assert left == right


class TestReporting:
    def test_format_table_contains_values(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 0.0001}], title="T")
        assert "# T" in text and "2.5" in text and "0.0001" in text

    def test_format_table_empty(self):
        assert "no rows" in format_table([], title="empty")

    def test_format_table_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]

    def test_format_series_bars(self):
        text = format_series([1, 2], [1.0, 2.0], "x", "y", title="S")
        assert "#" in text and "# S" in text

    def test_results_to_csv(self):
        csv = results_to_csv([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = csv.strip().splitlines()
        assert lines[0] == "a,b" and lines[1] == "1,x" and len(lines) == 3
        assert results_to_csv([]) == ""


class TestExperimentModules:
    """Each experiment module must run end-to-end on tiny inputs."""

    def test_exp_comparison_tiny(self):
        result = exp_comparison.run(quick=True, seed=1, k=2,
                                    schemes=["shortest-path", "cowen"], num_pairs=15)
        assert result.rows
        assert all(r["failures"] == 0 for r in result.rows)

    def test_exp_scale_free_tiny(self):
        result = exp_scale_free.run(quick=True, seed=1, k=2, deltas=[1e2, 1e12], num_pairs=12)
        agm_rows = result.filter(scheme="agm")
        ap_rows = result.filter(scheme="awerbuch-peleg")
        assert len(agm_rows) == 2 and len(ap_rows) == 2
        assert all(r["failures"] == 0 for r in result.rows)
        # the scale-free scheme's tables must grow less than the hierarchical one's,
        # whose storage tracks log Δ (see EXPERIMENTS.md E3 for the full sweep)
        agm_growth = agm_rows[-1]["max_table_bits"] / agm_rows[0]["max_table_bits"]
        ap_growth = ap_rows[-1]["max_table_bits"] / ap_rows[0]["max_table_bits"]
        assert agm_growth < ap_growth
        assert agm_growth <= 3.0

    def test_exp_lemma_properties_tiny(self):
        result = exp_lemma_properties.run(quick=True, seed=1, k=2)
        assert result.rows
        for row in result.rows:
            assert row["lemma2_violations"] == 0
            assert row["lemma3_violations"] == 0
