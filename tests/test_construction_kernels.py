"""Construction-kernel parity: the numba sources must be set-identical to the
numpy fallbacks, and ``REPRO_JIT=1`` builds must match default builds bit for
bit (with numba absent the guard falls back silently, so this file passes
either way; the CI jit job runs it with numba installed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.construction import kernels
from repro.construction.kernels import (
    _absorb_mark_py,
    _ancestor_closure_py,
    absorb_kernel,
    ancestor_closure,
    jit_requested,
)
from repro.covers.sparse_cover import build_sparse_cover
from repro.factory import build_scheme
from repro.graphs.generators import erdos_renyi_graph, random_geometric_graph
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.simulator import RoutingSimulator


@pytest.fixture
def jit_env(monkeypatch):
    """REPRO_JIT=1 with a fresh compile state (restored afterwards)."""
    monkeypatch.setenv("REPRO_JIT", "1")
    monkeypatch.setitem(kernels._JIT_STATE, "loaded", False)
    monkeypatch.setitem(kernels._JIT_STATE, "closure", None)
    monkeypatch.setitem(kernels._JIT_STATE, "absorb", None)


def random_forest(n: int, rng: np.random.Generator) -> np.ndarray:
    """A random rooted forest as a parent array (-1 at roots)."""
    parent = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for i in range(1, n):
        if rng.random() < 0.9:     # ~10% extra roots
            parent[order[i]] = order[rng.integers(0, i)]
    return parent


class TestAncestorClosure:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_python_source_matches_numpy_fallback(self, monkeypatch, seed):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        rng = np.random.default_rng(seed)
        n = 200
        parent = random_forest(n, rng)
        members = rng.choice(n, size=rng.integers(1, n), replace=False)
        pre_kept = rng.choice(n, size=10, replace=False)

        keep_np = np.zeros(n, dtype=bool)
        keep_py = np.zeros(n, dtype=bool)
        keep_np[pre_kept] = keep_py[pre_kept] = True
        ancestor_closure(members, parent, keep_np)      # numpy fallback
        _ancestor_closure_py(members.astype(np.int64), parent, keep_py)
        np.testing.assert_array_equal(keep_np, keep_py)

    def test_closure_contains_members_and_is_ancestor_closed(self):
        rng = np.random.default_rng(11)
        n = 120
        parent = random_forest(n, rng)
        members = rng.choice(n, size=30, replace=False)
        keep = ancestor_closure(members, parent, np.zeros(n, dtype=bool))
        assert keep[members].all()
        kept = np.flatnonzero(keep)
        parents = parent[kept]
        assert keep[parents[parents >= 0]].all()

    def test_jit_dispatch_matches_fallback(self, jit_env):
        rng = np.random.default_rng(5)
        n = 150
        parent = random_forest(n, rng)
        members = rng.choice(n, size=40, replace=False)
        keep_jit = ancestor_closure(members, parent, np.zeros(n, dtype=bool))
        frontier_keep = np.zeros(n, dtype=bool)
        _ancestor_closure_py(members.astype(np.int64), parent, frontier_keep)
        np.testing.assert_array_equal(keep_jit, frontier_keep)


class TestAbsorbKernel:
    def test_disabled_without_jit(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        assert not jit_requested()
        assert absorb_kernel() is None

    @pytest.mark.parametrize("seed", [601, 602])
    def test_pure_python_kernel_reproduces_numpy_cover(self, monkeypatch, seed):
        """Force the fused path (interpreted, no numba) against the numpy one."""
        graph = erdos_renyi_graph(60, seed=seed)
        oracle = DistanceOracle(graph, backend="dense")
        rho = float(np.nanpercentile(
            np.where(np.isfinite(oracle.matrix), oracle.matrix, np.nan), 20))

        monkeypatch.delenv("REPRO_JIT", raising=False)
        baseline = build_sparse_cover(graph, 3, rho, oracle=oracle)
        monkeypatch.setattr("repro.covers.sparse_cover.absorb_kernel",
                            lambda: _absorb_mark_py)
        fused = build_sparse_cover(graph, 3, rho, oracle=oracle)

        assert baseline.home == fused.home
        assert len(baseline.clusters) == len(fused.clusters)
        for a, b in zip(baseline.clusters, fused.clusters):
            assert (a.index, a.center) == (b.index, b.center)
            assert a.nodes == b.nodes
            assert a.kernel_centers == b.kernel_centers


class TestJitBuildParity:
    """REPRO_JIT=1 end-to-end: schemes must be bit-identical to default builds."""

    @pytest.mark.parametrize("scheme_name", ["cowen", "awerbuch-peleg"])
    def test_scheme_builds_identical(self, monkeypatch, jit_env, scheme_name):
        graph = random_geometric_graph(64, seed=904)
        oracle = DistanceOracle(graph, backend="dense")
        jit_scheme = build_scheme(scheme_name, graph, k=2, seed=3,
                                  oracle=oracle)
        monkeypatch.delenv("REPRO_JIT")
        ref_scheme = build_scheme(scheme_name, graph, k=2, seed=3,
                                  oracle=oracle)

        sim = RoutingSimulator(graph, oracle=oracle)
        pairs = sim.sample_pairs(200, seed=8)
        for u, v in pairs:
            a = jit_scheme.route(u, graph.name_of(v))
            b = ref_scheme.route(u, graph.name_of(v))
            assert a.found == b.found
            assert a.path == b.path
            assert a.cost == b.cost
