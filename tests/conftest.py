"""Shared fixtures.

Expensive objects (distance oracles, AGM scheme instances) are session-scoped
so the suite stays fast; tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro.core.params import AGMParams
from repro.core.scheme import AGMRoutingScheme
from repro.graphs.generators import (
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_geometric_graph,
    random_tree_graph,
    ring_of_cliques,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, shortest_path_tree
from repro.routing.simulator import RoutingSimulator


@pytest.fixture(scope="session")
def small_geometric() -> WeightedGraph:
    """A connected random geometric graph with ~48 nodes (metric weights)."""
    return random_geometric_graph(48, seed=101)


@pytest.fixture(scope="session")
def small_er() -> WeightedGraph:
    """A connected Erdős–Rényi graph with ~40 nodes and uniform weights."""
    return erdos_renyi_graph(40, seed=102)


@pytest.fixture(scope="session")
def small_grid() -> WeightedGraph:
    """A 6x6 grid with uniform random weights."""
    return grid_graph(6, 6, seed=103)


@pytest.fixture(scope="session")
def small_cliques() -> WeightedGraph:
    """A ring of cliques (locally dense, globally sparse)."""
    return ring_of_cliques(6, 6, seed=104)


@pytest.fixture(scope="session")
def tiny_path() -> WeightedGraph:
    """A 6-node path with unit weights."""
    return path_graph(6, seed=105)


@pytest.fixture(scope="session")
def small_tree_graph() -> WeightedGraph:
    """A random tree on 30 nodes."""
    return random_tree_graph(30, seed=106)


@pytest.fixture(scope="session")
def geometric_oracle(small_geometric) -> DistanceOracle:
    """Distance oracle of the geometric fixture."""
    return DistanceOracle(small_geometric)


@pytest.fixture(scope="session")
def er_oracle(small_er) -> DistanceOracle:
    """Distance oracle of the Erdős–Rényi fixture."""
    return DistanceOracle(small_er)


@pytest.fixture(scope="session")
def geometric_spt(small_geometric):
    """A shortest-path tree of the geometric fixture rooted at node 0."""
    return shortest_path_tree(small_geometric, 0)


@pytest.fixture(scope="session")
def agm_k2(small_geometric, geometric_oracle) -> AGMRoutingScheme:
    """An AGM scheme instance with k=2 on the geometric fixture."""
    return AGMRoutingScheme.build(small_geometric, k=2, params=AGMParams.experiment(),
                                  oracle=geometric_oracle, seed=7)


@pytest.fixture(scope="session")
def agm_k3(small_er, er_oracle) -> AGMRoutingScheme:
    """An AGM scheme instance with k=3 on the Erdős–Rényi fixture."""
    return AGMRoutingScheme.build(small_er, k=3, params=AGMParams.experiment(),
                                  oracle=er_oracle, seed=8)


@pytest.fixture(scope="session")
def geometric_simulator(small_geometric, geometric_oracle) -> RoutingSimulator:
    """Simulator bound to the geometric fixture."""
    return RoutingSimulator(small_geometric, oracle=geometric_oracle)


@pytest.fixture(scope="session")
def er_simulator(small_er, er_oracle) -> RoutingSimulator:
    """Simulator bound to the Erdős–Rényi fixture."""
    return RoutingSimulator(small_er, oracle=er_oracle)
