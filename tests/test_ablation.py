"""Tests for the E12 ablation experiment (decomposition-constant sensitivity)."""

import pytest

from repro.core.params import AGMParams
from repro.core.scheme import AGMRoutingScheme
from repro.experiments import exp_ablation
from repro.routing.simulator import RoutingSimulator


class TestAblationExperiment:
    def test_tiny_sweep_runs_and_stays_correct(self):
        result = exp_ablation.run(quick=True, seed=2, k=2,
                                  dense_gaps=[1, 3], sparse_shrinks=[6.0],
                                  num_pairs=15)
        assert len(result.rows) == 2
        assert all(r["failures"] == 0 for r in result.rows)
        assert {r["dense_gap"] for r in result.rows} == {1, 3}

    def test_rows_carry_setting_columns(self):
        result = exp_ablation.run(quick=True, seed=2, k=2,
                                  dense_gaps=[3], sparse_shrinks=[3.0, 12.0],
                                  num_pairs=10)
        for row in result.rows:
            assert row["sparse_shrink"] in (3.0, 12.0)
            assert row["scheme"] == "agm"


class TestConstantSensitivityDirect:
    @pytest.mark.parametrize("dense_gap", [1, 5])
    def test_correctness_insensitive_to_dense_gap(self, small_er, er_oracle, dense_gap):
        params = AGMParams.experiment().with_overrides(dense_gap=dense_gap)
        scheme = AGMRoutingScheme.build(small_er, k=2, params=params,
                                        oracle=er_oracle, seed=4)
        report = RoutingSimulator(small_er, oracle=er_oracle).evaluate(
            scheme, num_pairs=60, seed=5)
        assert report.failures == 0
        assert report.max_stretch <= 16 * 2 + 8

    @pytest.mark.parametrize("sparse_shrink", [2.0, 12.0])
    def test_correctness_insensitive_to_sparse_shrink(self, small_er, er_oracle, sparse_shrink):
        params = AGMParams.experiment().with_overrides(sparse_shrink=sparse_shrink)
        scheme = AGMRoutingScheme.build(small_er, k=2, params=params,
                                        oracle=er_oracle, seed=4)
        report = RoutingSimulator(small_er, oracle=er_oracle).evaluate(
            scheme, num_pairs=60, seed=5)
        assert report.failures == 0
        assert report.max_stretch <= 16 * 2 + 8
