"""Tests for the landmark hierarchy (Section 2.3, Claims 1-2, Lemma 3 prerequisites)."""

import pytest

from repro.core.decomposition import NeighborhoodDecomposition
from repro.core.landmarks import LandmarkHierarchy
from repro.core.params import AGMParams


@pytest.fixture(scope="module", params=[2, 3])
def hierarchy(request, small_geometric, geometric_oracle):
    k = request.param
    decomposition = NeighborhoodDecomposition(small_geometric, k, oracle=geometric_oracle)
    return LandmarkHierarchy(small_geometric, k, oracle=geometric_oracle,
                             decomposition=decomposition, seed=13)


class TestLevels:
    def test_level_zero_is_everything_and_top_is_empty(self, hierarchy):
        assert hierarchy.level_set(0) == set(range(hierarchy.n))
        assert hierarchy.level_set(hierarchy.k) == set()

    def test_levels_nested(self, hierarchy):
        for i in range(hierarchy.k):
            assert hierarchy.level_set(i + 1) <= hierarchy.level_set(i)

    def test_level_sizes_decreasing(self, hierarchy):
        sizes = [hierarchy.level_size(i) for i in range(hierarchy.k + 1)]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_rank_consistent_with_levels(self, hierarchy):
        for v in range(hierarchy.n):
            r = hierarchy.rank_of(v)
            assert v in hierarchy.level_set(r)
            if r + 1 < hierarchy.k:
                assert v not in hierarchy.level_set(r + 1)

    def test_sampling_deterministic_given_seed(self, small_geometric, geometric_oracle):
        a = LandmarkHierarchy(small_geometric, 2, oracle=geometric_oracle, seed=5)
        b = LandmarkHierarchy(small_geometric, 2, oracle=geometric_oracle, seed=5)
        assert a.level_set(1) == b.level_set(1)

    def test_invalid_level_rejected(self, hierarchy):
        with pytest.raises(Exception):
            hierarchy.level_set(hierarchy.k + 1)


class TestNearbyLandmarks:
    def test_count_matches_params(self, small_geometric, geometric_oracle):
        params = AGMParams.experiment(landmark_count_factor=0.1)
        h = LandmarkHierarchy(small_geometric, 3, oracle=geometric_oracle,
                              params=params, seed=1)
        expected = params.nearby_landmark_count(small_geometric.n, 3)
        s = h.nearby_landmarks(0, 0)
        assert len(s) == min(expected, small_geometric.n)

    def test_nearby_landmarks_are_level_members_sorted_by_distance(self, hierarchy,
                                                                   geometric_oracle):
        for i in range(hierarchy.k):
            s = hierarchy.nearby_landmarks(5, i)
            level = hierarchy.level_set(i)
            assert all(v in level for v in s)
            dists = [geometric_oracle.dist(5, v) for v in s]
            assert dists == sorted(dists)

    def test_empty_top_level_gives_empty_set(self, hierarchy):
        assert hierarchy.nearby_landmarks(0, hierarchy.k) == []

    def test_union_and_serves(self, hierarchy):
        union = hierarchy.nearby_union(2)
        assert union
        member = next(iter(union))
        assert hierarchy.serves(member, 2)
        assert 2 in union  # node 2 is its own closest rank-0 landmark

    def test_nearby_cache_stable(self, hierarchy):
        assert hierarchy.nearby_landmarks(7, 1) == hierarchy.nearby_landmarks(7, 1)


class TestCenters:
    def test_highest_rank_in_neighborhood(self, hierarchy):
        for u in range(0, hierarchy.n, 6):
            for i in range(hierarchy.k + 1):
                m = hierarchy.highest_rank_in(u, i)
                neighborhood = hierarchy.decomposition.neighborhood(u, i)
                ranks = [hierarchy.rank_of(v) for v in neighborhood]
                assert m == max(ranks)

    def test_center_is_closest_of_top_rank_class(self, hierarchy, geometric_oracle):
        for u in range(0, hierarchy.n, 6):
            for i in range(hierarchy.k + 1):
                c = hierarchy.center(u, i)
                m = hierarchy.highest_rank_in(u, i)
                level = hierarchy.level_set(m)
                assert c in level
                best = min(geometric_oracle.dist(u, v) for v in level)
                assert geometric_oracle.dist(u, c) == pytest.approx(best)

    def test_center_is_inside_neighborhood(self, hierarchy):
        for u in range(0, hierarchy.n, 9):
            for i in range(1, hierarchy.k + 1):
                c = hierarchy.center(u, i)
                assert c in set(hierarchy.decomposition.neighborhood(u, i))

    def test_center_level_zero_is_self(self, hierarchy):
        # A(u,0) = {u}, so the highest rank present is u's own rank and the
        # closest member of that class is u itself.
        for u in range(0, hierarchy.n, 10):
            if hierarchy.rank_of(u) == hierarchy.highest_rank_in(u, 0):
                assert hierarchy.center(u, 0) == u

    def test_center_always_in_nearby_union_of_source(self, hierarchy):
        """c(u, i) in S(u) — the property the sparse strategy relies on."""
        for u in range(hierarchy.n):
            for i in range(hierarchy.k + 1):
                assert hierarchy.center(u, i) in hierarchy.nearby_union(u)


class TestClaims:
    def test_claims_hold_with_paper_constants(self, small_geometric, geometric_oracle):
        h = LandmarkHierarchy(small_geometric, 2, oracle=geometric_oracle,
                              params=AGMParams.paper(), seed=3)
        verdict = h.verify_claims(sample_nodes=range(0, small_geometric.n, 4))
        assert verdict["claim1"] is True
        assert verdict["claim2"] is True

    def test_lemma3_sparse_neighborhoods(self, small_geometric, geometric_oracle):
        """Lemma 3: i sparse for u and v in E(u,i)  =>  c(u,i) in S(v) (paper constants)."""
        k = 2
        params = AGMParams.paper()
        decomposition = NeighborhoodDecomposition(small_geometric, k,
                                                  oracle=geometric_oracle, params=params)
        h = LandmarkHierarchy(small_geometric, k, oracle=geometric_oracle,
                              decomposition=decomposition, params=params, seed=17)
        violations = 0
        for u in range(small_geometric.n):
            for i in range(k + 1):
                if decomposition.is_dense(u, i):
                    continue
                c = h.center(u, i)
                for v in decomposition.e_ball(u, i):
                    if c not in h.nearby_union(v):
                        violations += 1
        assert violations == 0
