"""Backend-parity tests: every exact backend must be indistinguishable.

The lazy backend must agree with the dense matrix to 1e-9 on distances,
``ball``, ``nearest`` and tie-breaking order across seeded random graphs, and
all six routing schemes must produce identical routes whichever exact backend
the shared oracle uses.  The landmark backend is approximate: it must never
underestimate and must be refused for scheme construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.factory import SCHEME_NAMES, build_scheme
from repro.graphs.backends import (
    DenseAPSPBackend,
    LandmarkApproxBackend,
    LazyDijkstraBackend,
    resolve_backend,
)
from repro.graphs.generators import (
    erdos_renyi_graph,
    grid_graph,
    random_geometric_graph,
    ring_of_cliques,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.messages import RouteResult
from repro.routing.simulator import (
    InvalidRouteError,
    PairSamplingError,
    RoutingSimulator,
)


def parity_graphs():
    yield random_geometric_graph(40, seed=301)
    yield erdos_renyi_graph(36, seed=302)
    yield grid_graph(5, 5, seed=303)
    yield ring_of_cliques(4, 5, seed=304)
    # ties on purpose: unit weights make many equidistant pairs
    yield erdos_renyi_graph(30, weights="unit", seed=305)
    # disconnected graph
    yield WeightedGraph(6, [(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.5)], seed=306)


class TestExactBackendParity:
    @pytest.mark.parametrize("index,graph", list(enumerate(parity_graphs())))
    def test_rows_balls_nearest_and_order_agree(self, index, graph):
        dense = DistanceOracle(graph, backend="dense")
        lazy = DistanceOracle(graph, backend=LazyDijkstraBackend(graph, cache_rows=8))
        rng = np.random.default_rng(400 + index)
        assert dense.diameter() == pytest.approx(lazy.diameter(), abs=1e-9)
        assert dense.min_positive_distance() == pytest.approx(
            lazy.min_positive_distance(), abs=1e-9)
        for u in range(graph.n):
            np.testing.assert_allclose(lazy.row(u), dense.row(u), atol=1e-9)
            # identical stable tie-breaking order, not merely equal distances
            np.testing.assert_array_equal(lazy.nodes_by_distance(u),
                                          dense.nodes_by_distance(u))
            radius = float(rng.uniform(0, max(dense.eccentricity(u), 1.0)))
            assert lazy.ball(u, radius) == dense.ball(u, radius)
            assert lazy.ball_size(u, radius) == dense.ball_size(u, radius)
            m = int(rng.integers(1, graph.n + 1))
            assert lazy.nearest(u, m) == dense.nearest(u, m)
            candidates = [int(v) for v in rng.choice(graph.n, size=graph.n // 2,
                                                     replace=False)]
            assert (lazy.nearest(u, m, candidates)
                    == dense.nearest(u, m, candidates))

    def test_pair_distances_agree(self):
        graph = random_geometric_graph(40, seed=311)
        dense = DistanceOracle(graph, backend="dense")
        lazy = DistanceOracle(graph, backend="lazy")
        rng = np.random.default_rng(7)
        us = rng.integers(0, graph.n, size=200)
        vs = rng.integers(0, graph.n, size=200)
        np.testing.assert_allclose(lazy.pair_distances(us, vs),
                                   dense.pair_distances(us, vs), atol=1e-9)

    def test_iter_row_blocks_covers_matrix(self):
        graph = erdos_renyi_graph(30, seed=312)
        dense = DistanceOracle(graph, backend="dense")
        lazy = DistanceOracle(graph, backend=LazyDijkstraBackend(graph, cache_rows=4,
                                                                 chunk_rows=7))
        seen = []
        for chunk, rows in lazy.iter_row_blocks(block=7):
            np.testing.assert_allclose(rows, dense.matrix[chunk], atol=1e-9)
            seen.extend(chunk)
        assert seen == list(range(graph.n))

    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_all_schemes_route_identically_under_either_backend(self, scheme_name):
        graph = random_geometric_graph(36, seed=321)
        dense = DistanceOracle(graph, backend="dense")
        lazy = DistanceOracle(graph, backend="lazy")
        scheme_dense = build_scheme(scheme_name, graph, k=2, seed=9, oracle=dense)
        scheme_lazy = build_scheme(scheme_name, graph, k=2, seed=9, oracle=lazy)
        pairs = RoutingSimulator(graph, oracle=dense).sample_pairs(80, seed=10)
        for u, v in pairs:
            a = scheme_dense.route(u, graph.name_of(v))
            b = scheme_lazy.route(u, graph.name_of(v))
            assert a.path == b.path
            assert a.found == b.found
            assert a.cost == pytest.approx(b.cost, abs=1e-9)


class TestLazyBackendCache:
    def test_lru_eviction_keeps_results_correct(self):
        graph = erdos_renyi_graph(32, seed=331)
        backend = LazyDijkstraBackend(graph, cache_rows=4)
        dense = DistanceOracle(graph, backend="dense")
        for u in list(range(graph.n)) + list(range(graph.n)):
            np.testing.assert_allclose(backend.row(u), dense.row(u), atol=1e-9)
            assert len(backend._rows) <= 4
        assert backend.misses >= graph.n
        assert backend.nbytes() <= 4 * graph.n * 8 * 2 + 1024

    def test_prefetch_fills_cache_in_one_batch(self):
        graph = erdos_renyi_graph(24, seed=332)
        backend = LazyDijkstraBackend(graph, cache_rows=64)
        backend.prefetch(range(10))
        misses_after_prefetch = backend.misses
        for u in range(10):
            backend.row(u)
        assert backend.misses == misses_after_prefetch  # all hits
        assert backend.hits >= 10

    def test_prefetch_uses_one_multi_source_call(self):
        graph = erdos_renyi_graph(24, seed=334)
        backend = LazyDijkstraBackend(graph, cache_rows=64, chunk_rows=4)
        calls = []
        original = backend._compute
        backend._compute = lambda sources: calls.append(list(sources)) or original(sources)
        backend.prefetch(range(12))
        # one evaluation round -> one vectorized kernel invocation, even when
        # the hint is larger than the streaming chunk size
        assert len(calls) == 1 and len(calls[0]) == 12
        backend.prefetch(range(12))  # already cached: no further kernel calls
        assert len(calls) == 1

    def test_prefetch_hint_truncated_to_cache_capacity(self):
        graph = erdos_renyi_graph(24, seed=335)
        backend = LazyDijkstraBackend(graph, cache_rows=6)
        backend.prefetch(range(20))
        assert len(backend._rows) <= 6

    def test_never_materializes_dense_matrix(self):
        graph = erdos_renyi_graph(64, seed=333)
        backend = LazyDijkstraBackend(graph, cache_rows=8)
        oracle = DistanceOracle(graph, backend=backend)
        oracle.diameter()
        for u in range(graph.n):
            oracle.ball_size(u, 1.0)
        assert backend.nbytes() < graph.n * graph.n * 8 / 4
        with pytest.raises(AttributeError):
            _ = oracle.matrix


class TestLandmarkApproxBackend:
    def test_upper_bound_and_landmark_exactness(self):
        graph = random_geometric_graph(40, seed=341)
        dense = DistanceOracle(graph, backend="dense")
        approx = DistanceOracle(graph, backend=LandmarkApproxBackend(graph,
                                                                     num_landmarks=6))
        assert not approx.exact
        for u in range(graph.n):
            true_row = dense.row(u)
            est_row = approx.row(u)
            assert est_row[u] == 0.0
            # upper bound everywhere, finite wherever the true distance is
            mask = np.isfinite(true_row)
            assert np.all(est_row[mask] >= true_row[mask] - 1e-9)
        for landmark in approx.backend.landmarks:
            np.testing.assert_allclose(approx.row(landmark), dense.row(landmark),
                                       atol=1e-9)

    def test_scheme_construction_refuses_approximate_backend(self):
        graph = random_geometric_graph(24, seed=342)
        with pytest.raises(ValueError, match="exact"):
            build_scheme("agm", graph, k=2, backend="landmark")

    def test_env_forced_landmark_backend_is_rejected_for_schemes(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISTANCE_BACKEND", "landmark")
        graph = random_geometric_graph(24, seed=343)
        for scheme_name in ("agm", "thorup-zwick", "cowen"):
            with pytest.raises(Exception, match="exact"):
                build_scheme(scheme_name, graph, k=2, seed=1)

    def test_every_component_receives_a_landmark(self):
        graph = WeightedGraph(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 2.0)],
                              seed=344)
        backend = LandmarkApproxBackend(graph, num_landmarks=4)
        comp = graph.component_ids()
        assert {int(comp[l]) for l in backend.landmarks} == set(comp.tolist())
        # intra-component estimates are finite on both sides
        assert np.isfinite(backend.dist(3, 5))
        assert np.isfinite(backend.dist(0, 2))
        assert not np.isfinite(backend.dist(0, 3))  # truly disconnected


class TestMutationInvalidation:
    """Regression: live backends must not serve stale rows after graph mutation.

    ``add_edge`` always invalidated the graph's own CSR/component caches, but
    a live ``LazyDijkstraBackend`` kept its LRU rows.  Backends now watch
    ``graph.version`` and invalidate themselves on the next query.
    """

    def test_lazy_backend_drops_stale_rows_after_add_edge(self):
        graph = WeightedGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        backend = LazyDijkstraBackend(graph, cache_rows=8)
        oracle = DistanceOracle(graph, backend=backend)
        assert oracle.dist(0, 3) == pytest.approx(3.0)   # row 0 now cached
        graph.add_edge(0, 3, 0.5)
        assert oracle.dist(0, 3) == pytest.approx(0.5)
        assert oracle.dist(0, 2) == pytest.approx(1.5)   # via the new shortcut

    def test_lazy_backend_tracks_removals_and_reweights(self):
        graph = erdos_renyi_graph(24, seed=371)
        backend = LazyDijkstraBackend(graph, cache_rows=32)
        oracle = DistanceOracle(graph, backend=backend)
        oracle.prefetch(range(graph.n))
        u, v, w = next(graph.edges())
        graph.set_edge_weight(u, v, w * 10)
        fresh = DistanceOracle(graph, backend="dense")
        for s in range(graph.n):
            np.testing.assert_allclose(oracle.row(s), fresh.row(s), atol=1e-9)
            np.testing.assert_array_equal(oracle.nodes_by_distance(s),
                                          fresh.nodes_by_distance(s))
        graph.remove_edge(u, v)
        fresh = DistanceOracle(graph, backend="dense")
        np.testing.assert_allclose(oracle.row(u), fresh.row(u), atol=1e-9)

    def test_dense_backend_recomputes_matrix_and_stats(self):
        graph = WeightedGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        oracle = DistanceOracle(graph, backend="dense")
        assert oracle.diameter() == pytest.approx(2.0)
        graph.add_edge(0, 2, 0.25)
        assert oracle.dist(0, 2) == pytest.approx(0.25)
        assert oracle.diameter() == pytest.approx(1.0)
        graph.detach_node(2)
        assert oracle.dist(0, 2) == float("inf")

    def test_landmark_backend_reestimates_after_mutation(self):
        graph = random_geometric_graph(30, seed=372)
        oracle = DistanceOracle(graph,
                                backend=LandmarkApproxBackend(graph, num_landmarks=5))
        u, v, w = next(graph.edges())
        graph.set_edge_weight(u, v, w * 5)
        exact = DistanceOracle(graph, backend="dense")
        for s in range(graph.n):
            true_row = exact.row(s)
            est_row = oracle.row(s)
            mask = np.isfinite(true_row)
            assert np.all(est_row[mask] >= true_row[mask] - 1e-9)

    def test_explicit_invalidate_passthrough(self):
        graph = erdos_renyi_graph(16, seed=373)
        backend = LazyDijkstraBackend(graph, cache_rows=8)
        oracle = DistanceOracle(graph, backend=backend)
        oracle.prefetch(range(8))
        assert len(backend._rows) > 0
        oracle.invalidate()
        assert len(backend._rows) == 0

    def test_version_counter_bumps_on_every_mutation_kind(self):
        graph = WeightedGraph(4, [(0, 1, 1.0), (1, 2, 2.0)])
        v0 = graph.version
        graph.add_edge(2, 3, 1.0)
        graph.set_edge_weight(0, 1, 4.0)
        graph.remove_edge(1, 2)
        graph.detach_node(3)
        assert graph.version == v0 + 4
        assert graph.min_weight() == pytest.approx(4.0)

    def test_schemes_built_after_mutation_see_fresh_distances(self):
        graph = random_geometric_graph(28, seed=374)
        oracle = DistanceOracle(graph, backend="lazy")
        build_scheme("shortest-path", graph, k=2, oracle=oracle)  # warm cache
        u, v, w = next(graph.edges())
        graph.remove_edge(u, v)
        scheme = build_scheme("shortest-path", graph, k=2, oracle=oracle)
        sim = RoutingSimulator(graph, oracle=DistanceOracle(graph, backend="dense"))
        report = sim.evaluate_batch(scheme, sim.sample_pairs(60, seed=1))
        assert report.failures == 0
        assert report.max_stretch == pytest.approx(1.0)


class TestBackendSelection:
    def test_auto_picks_dense_for_small_graphs(self):
        graph = erdos_renyi_graph(24, seed=351)
        assert DistanceOracle(graph).backend_name == "dense"

    def test_auto_respects_node_limit_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_NODE_LIMIT", "8")
        graph = erdos_renyi_graph(24, seed=352)
        assert DistanceOracle(graph).backend_name == "lazy"

    def test_explicit_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISTANCE_BACKEND", "lazy")
        graph = erdos_renyi_graph(16, seed=353)
        assert DistanceOracle(graph).backend_name == "lazy"

    def test_unknown_name_rejected(self):
        graph = erdos_renyi_graph(8, seed=354)
        with pytest.raises(ValueError, match="unknown distance backend"):
            resolve_backend(graph, "frobnicate")

    def test_matrix_argument_forces_dense(self):
        graph = erdos_renyi_graph(10, seed=355)
        matrix = DistanceOracle(graph, backend="dense").matrix
        oracle = DistanceOracle(graph, matrix=matrix)
        assert isinstance(oracle.backend, DenseAPSPBackend)
        assert oracle.backend_name == "dense"


class TestVectorizedSampling:
    def test_sample_pairs_exact_count_and_connected(self):
        graph = WeightedGraph(6, [(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.5)], seed=361)
        sim = RoutingSimulator(graph, oracle=DistanceOracle(graph, backend="dense"))
        pairs = sim.sample_pairs(200, seed=1)
        assert len(pairs) == 200
        comp = graph.component_ids()
        for u, v in pairs:
            assert u != v and comp[u] == comp[v]
        # node 5 is isolated: it can never appear in a pair
        assert all(5 not in pair for pair in pairs)

    def test_sample_pairs_deterministic_per_seed(self):
        graph = erdos_renyi_graph(30, seed=362)
        sim = RoutingSimulator(graph)
        assert sim.sample_pairs(50, seed=3) == sim.sample_pairs(50, seed=3)
        assert sim.sample_pairs(50, seed=3) != sim.sample_pairs(50, seed=4)

    def test_verify_walks_rejects_out_of_range_node_ids(self):
        graph = WeightedGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        sim = RoutingSimulator(graph, oracle=DistanceOracle(graph, backend="dense"))
        # a negative id must not wrap onto a real node through the CSR gather
        with pytest.raises(InvalidRouteError, match="outside the graph"):
            sim.verify_walks([RouteResult(found=True, path=[0, -2, 2])], [0], [2])
        with pytest.raises(InvalidRouteError, match="outside the graph"):
            sim.verify_walks([RouteResult(found=True, path=[0, 7, 2])], [0], [2])

    def test_shortfall_raises_by_default_and_warns_on_request(self):
        isolated = WeightedGraph(4, [])  # no connected pair exists
        sim = RoutingSimulator(isolated, oracle=DistanceOracle(isolated, backend="dense"))
        with pytest.raises(PairSamplingError):
            sim.sample_pairs(5, seed=0)
        with pytest.warns(UserWarning, match="no connected pair"):
            assert sim.sample_pairs(5, seed=0, on_shortfall="warn") == []

    def test_partial_shortfall_warns_and_returns_partial_list(self):
        # one connected pair among 1000 nodes: acceptance is 2e-6, so the
        # per-round candidate cap bites and two rounds cannot produce 400
        # pairs — the *partial* shortfall path, distinct from the
        # no-pair-exists early exit above
        graph = WeightedGraph(1000, [(0, 1, 1.0)])
        sim = RoutingSimulator(graph,
                               oracle=DistanceOracle(graph, backend="lazy"))
        with pytest.raises(PairSamplingError, match="sampled only"):
            sim.sample_pairs(400, seed=0, max_batches=2)
        with pytest.warns(UserWarning, match="sampled only"):
            pairs = sim.sample_pairs(400, seed=0, on_shortfall="warn",
                                     max_batches=2)
        assert 0 < len(pairs) < 400
        assert all(set(pair) == {0, 1} for pair in pairs)
        # the raise path must not have consumed the partial sample silently:
        # the same seed re-yields the identical partial list
        with pytest.warns(UserWarning, match="sampled only"):
            again = sim.sample_pairs(400, seed=0, on_shortfall="warn",
                                     max_batches=2)
        assert again == pairs

    def test_max_batches_must_be_positive(self):
        graph = WeightedGraph(4, [(0, 1, 1.0)])
        sim = RoutingSimulator(graph,
                               oracle=DistanceOracle(graph, backend="lazy"))
        with pytest.raises(ValueError, match="at least one sampling batch"):
            sim.sample_pairs(2, seed=0, max_batches=0)


class TestDenseRefusal:
    """Regression: any path that would materialize an n×n matrix above the
    dense node limit must fail fast with a clear error, never OOM.  The
    mocked-small limit stands in for a genuinely large n."""

    def test_constructor_refuses_above_limit(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_NODE_LIMIT", "16")
        graph = erdos_renyi_graph(24, seed=361)
        with pytest.raises(ValueError, match="dense APSP backend refused"):
            DenseAPSPBackend(graph)

    def test_explicit_dense_oracle_refused(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_NODE_LIMIT", "8")
        graph = erdos_renyi_graph(32, seed=362)
        with pytest.raises(ValueError, match="REPRO_DENSE_NODE_LIMIT"):
            DistanceOracle(graph, backend="dense")

    def test_supplied_matrix_bypasses_refusal(self, monkeypatch):
        graph = erdos_renyi_graph(20, seed=363)
        matrix = DistanceOracle(graph, backend="dense").matrix
        monkeypatch.setenv("REPRO_DENSE_NODE_LIMIT", "4")
        oracle = DistanceOracle(graph, matrix=matrix)
        assert oracle.backend_name == "dense"
        np.testing.assert_allclose(oracle.row(0), matrix[0])

    def test_auto_selection_stays_clear_of_refusal(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_NODE_LIMIT", "8")
        graph = erdos_renyi_graph(24, seed=364)
        oracle = DistanceOracle(graph)
        assert oracle.backend_name == "lazy"
        assert np.isfinite(oracle.dist(0, 1))


class TestLandmarkRowsCertificate:
    """The landmark scoring mode's inputs: ``landmark_rows`` must be exact
    distance rows, stay exact across churn (version sync), and yield valid
    ALT lower bounds — the properties the stretch certificate rests on."""

    def test_rows_are_exact_landmark_distances(self):
        graph = random_geometric_graph(36, seed=345)
        backend = LandmarkApproxBackend(graph, num_landmarks=5, seed=3)
        dense = DistanceOracle(graph, backend="dense")
        rows = backend.landmark_rows
        assert rows.shape == (len(backend.landmarks), graph.n)
        for i, landmark in enumerate(backend.landmarks):
            np.testing.assert_allclose(rows[i], dense.row(landmark), atol=1e-9)

    def test_rows_resync_after_churn(self):
        graph = random_geometric_graph(36, seed=346)
        backend = LandmarkApproxBackend(graph, num_landmarks=5, seed=3)
        stale = backend.landmark_rows.copy()
        u, v, w = next(graph.edges())
        graph.set_edge_weight(u, v, w * 6)
        graph.add_edge(u, (v + 1) % graph.n, 0.01)
        rows = backend.landmark_rows
        dense = DistanceOracle(graph, backend="dense")
        for i, landmark in enumerate(backend.landmarks):
            np.testing.assert_allclose(rows[i], dense.row(landmark), atol=1e-9)
        assert not np.allclose(stale, rows)

    def test_alt_lower_bound_below_truth_after_churn(self):
        graph = random_geometric_graph(36, seed=347)
        backend = LandmarkApproxBackend(graph, num_landmarks=6, seed=1)
        u, v, w = next(graph.edges())
        graph.set_edge_weight(u, v, w * 3)
        rows = backend.landmark_rows
        dense = DistanceOracle(graph, backend="dense")
        diff = np.abs(rows[:, :, None] - rows[:, None, :])
        bound = np.where(np.isfinite(diff), diff, 0.0).max(axis=0)
        true = dense.matrix
        mask = np.isfinite(true)
        assert np.all(bound[mask] <= true[mask] + 1e-9)

    def test_estimates_remain_upper_bounds_under_version_sync(self):
        graph = random_geometric_graph(30, seed=348)
        oracle = DistanceOracle(
            graph, backend=LandmarkApproxBackend(graph, num_landmarks=5))
        oracle.row(0)                       # warm the approximation cache
        u, v, w = next(graph.edges())
        graph.remove_edge(u, v)
        exact = DistanceOracle(graph, backend="dense")
        for s in range(graph.n):
            true_row = exact.row(s)
            est_row = oracle.row(s)
            mask = np.isfinite(true_row)
            assert np.all(est_row[mask] >= true_row[mask] - 1e-9)


class TestLazyStatsFastPath:
    """The lazy backend's pruned eccentricity-bound diameter is *exact*.

    The dense backend computes the diameter from the full matrix; the lazy
    backend now prunes nodes whose eccentricity upper bound cannot beat the
    running maximum.  Pruning is a search-order optimization, not an
    approximation — the two must agree to the last bit, and the minimum
    positive distance must be the literal smallest edge weight.
    """

    @pytest.mark.parametrize("index,graph",
                             list(enumerate(parity_graphs())))
    def test_diameter_bitwise_equal_to_dense(self, index, graph):
        dense = DistanceOracle(graph, backend="dense")
        lazy = DistanceOracle(graph,
                              backend=LazyDijkstraBackend(graph, cache_rows=4))
        assert lazy.diameter() == dense.diameter()
        assert lazy.min_positive_distance() == dense.min_positive_distance()
        assert lazy.min_positive_distance() == graph.min_weight()

    def test_edgeless_graph_stats(self):
        graph = WeightedGraph(4, [], seed=1)
        lazy = DistanceOracle(graph,
                              backend=LazyDijkstraBackend(graph, cache_rows=4))
        dense = DistanceOracle(graph, backend="dense")
        assert lazy.diameter() == dense.diameter() == 0.0
        assert lazy.min_positive_distance() == dense.min_positive_distance()
