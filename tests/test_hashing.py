"""Tests for the hashing substrate (k-wise hash, digit hash, bucket hash)."""

import collections

import pytest

from repro.hashing.universal import BucketHash, DigitHash, KWiseHash


class TestKWiseHash:
    def test_deterministic_per_instance(self):
        h = KWiseHash(8, seed=1)
        assert h("node-17") == h("node-17")
        assert h(("a", 3)) == h(("a", 3))

    def test_different_seeds_differ(self):
        a, b = KWiseHash(8, seed=1), KWiseHash(8, seed=2)
        values_a = [a(i) for i in range(50)]
        values_b = [b(i) for i in range(50)]
        assert values_a != values_b

    def test_handles_arbitrary_hashable_names(self):
        h = KWiseHash(4, seed=0)
        for name in [0, "x", (1, "y"), 2**80, -5]:
            assert isinstance(h(name), int)

    def test_storage_bits_scales_with_independence(self):
        assert KWiseHash(16, seed=0).storage_bits() == 2 * KWiseHash(8, seed=0).storage_bits()

    def test_rejects_bad_independence(self):
        with pytest.raises(Exception):
            KWiseHash(0)

    def test_spread_over_range(self):
        h = KWiseHash(8, seed=3)
        values = [h(i) % 97 for i in range(2000)]
        counts = collections.Counter(values)
        # roughly uniform: no residue grabs more than 4x its fair share
        assert max(counts.values()) < 4 * (2000 / 97)


class TestDigitHash:
    def test_digits_shape_and_range(self):
        dh = DigitHash(sigma=5, length=4, seed=2)
        d = dh.digits("some-name")
        assert len(d) == 4
        assert all(0 <= x < 5 for x in d)

    def test_prefix_consistency(self):
        dh = DigitHash(sigma=7, length=5, seed=2)
        assert dh.prefix("n", 3) == dh.digits("n")[:3]
        assert dh.prefix("n", 0) == ()
        with pytest.raises(Exception):
            dh.prefix("n", 6)

    def test_deterministic(self):
        a = DigitHash(sigma=4, length=3, seed=9)
        b = DigitHash(sigma=4, length=3, seed=9)
        assert a.digits("abc") == b.digits("abc")

    def test_sigma_one_degenerate(self):
        dh = DigitHash(sigma=1, length=3, seed=0)
        assert dh.digits("whatever") == (0, 0, 0)

    def test_max_prefix_load_reasonable(self):
        dh = DigitHash(sigma=8, length=3, seed=4)
        names = [f"node-{i}" for i in range(256)]
        # a length-1 prefix splits 256 names over 8 digits: fair share 32
        assert dh.max_prefix_load(names, 1) < 4 * 32
        assert dh.max_prefix_load([], 1) == 0

    def test_storage_and_digit_bits(self):
        dh = DigitHash(sigma=8, length=3, independence=8, seed=0)
        assert dh.digit_bits() == 3
        assert dh.storage_bits() == 3 * 8 * 61


class TestBucketHash:
    def test_bucket_in_range(self):
        bh = BucketHash(17, seed=5)
        assert all(0 <= bh(f"n{i}") < 17 for i in range(200))

    def test_deterministic(self):
        assert BucketHash(10, seed=1)("x") == BucketHash(10, seed=1)("x")

    def test_single_bucket(self):
        bh = BucketHash(1, seed=0)
        assert bh("anything") == 0

    def test_load_balanced(self):
        bh = BucketHash(16, seed=7)
        counts = collections.Counter(bh(f"node-{i}") for i in range(1600))
        assert max(counts.values()) < 3 * 100

    def test_storage_bits_positive(self):
        assert BucketHash(64, seed=0).storage_bits() > 0
