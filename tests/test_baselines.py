"""Tests for the five baseline routing schemes and the scheme factory."""

import pytest

from repro.baselines.awerbuch_peleg import AwerbuchPelegRouting
from repro.baselines.cowen import CowenRouting
from repro.baselines.exponential_stretch import ExponentialStretchRouting
from repro.baselines.shortest_path import ShortestPathRouting
from repro.baselines.thorup_zwick import ThorupZwickRouting
from repro.factory import SCHEME_NAMES, build_scheme
from repro.graphs.generators import rescale_aspect_ratio, random_geometric_graph
from repro.graphs.graph import WeightedGraph
from repro.routing.simulator import RoutingSimulator


@pytest.fixture(scope="module")
def shortest(small_geometric, geometric_oracle):
    return ShortestPathRouting(small_geometric, oracle=geometric_oracle)


@pytest.fixture(scope="module")
def cowen(small_geometric, geometric_oracle):
    return CowenRouting(small_geometric, oracle=geometric_oracle, seed=3)


@pytest.fixture(scope="module")
def tz(small_geometric, geometric_oracle):
    return ThorupZwickRouting(small_geometric, k=3, oracle=geometric_oracle, seed=4)


@pytest.fixture(scope="module")
def ap(small_geometric, geometric_oracle):
    return AwerbuchPelegRouting(small_geometric, k=2, oracle=geometric_oracle, seed=5)


@pytest.fixture(scope="module")
def expo(small_geometric, geometric_oracle):
    return ExponentialStretchRouting(small_geometric, k=3, oracle=geometric_oracle, seed=6)


class TestShortestPath:
    def test_stretch_is_exactly_one(self, shortest, geometric_simulator):
        report = geometric_simulator.evaluate(shortest, num_pairs=150, seed=1)
        assert report.failures == 0
        assert report.max_stretch == pytest.approx(1.0, abs=1e-9)

    def test_tables_have_n_minus_1_entries(self, shortest, small_geometric):
        expected = small_geometric.n - 1
        breakdown = shortest.tables[0].breakdown()
        assert breakdown["next_hop_entries"] >= expected  # at least 1 bit per entry

    def test_route_to_self_and_unknown(self, shortest, small_geometric):
        assert shortest.route(0, small_geometric.name_of(0)).found
        assert not shortest.route(0, "ghost").found

    def test_largest_tables_of_all_schemes(self, shortest, cowen, tz, small_geometric):
        assert shortest.avg_table_bits() > cowen.avg_table_bits()
        assert shortest.avg_table_bits() > tz.avg_table_bits()


class TestCowen:
    def test_stretch_at_most_three(self, cowen, geometric_simulator):
        report = geometric_simulator.evaluate(cowen, num_pairs=200, seed=2)
        assert report.failures == 0
        assert report.max_stretch <= 3.0 + 1e-6

    def test_is_labeled_with_nonzero_labels(self, cowen):
        assert cowen.labeled
        assert cowen.max_label_bits() > 0

    def test_home_landmark_is_nearest(self, cowen, geometric_oracle):
        for v in range(0, cowen.graph.n, 7):
            home = cowen.home[v]
            best = min(geometric_oracle.dist(v, a) for a in cowen.landmarks)
            assert geometric_oracle.dist(v, home) == pytest.approx(best)

    def test_route_to_self(self, cowen, small_geometric):
        assert cowen.route(3, small_geometric.name_of(3)).found

    def test_landmarks_never_empty(self, small_geometric, geometric_oracle):
        scheme = CowenRouting(small_geometric, oracle=geometric_oracle, seed=1,
                              sample_probability=0.0)
        assert scheme.landmarks == [0]


class TestThorupZwick:
    def test_routes_all_pairs(self, tz, geometric_simulator):
        report = geometric_simulator.evaluate(tz, num_pairs=200, seed=3)
        assert report.failures == 0

    def test_stretch_within_4k_minus_5_envelope(self, tz, geometric_simulator):
        report = geometric_simulator.evaluate(tz, num_pairs=200, seed=4)
        assert report.max_stretch <= max(4 * tz.k - 5, 1) + 1e-6

    def test_levels_nested_and_nonempty(self, tz):
        for a, b in zip(tz.levels, tz.levels[1:]):
            assert set(b) <= set(a)
            assert b

    def test_labeled_with_labels(self, tz):
        assert tz.labeled and tz.max_label_bits() > 0

    def test_k1_behaves_like_single_level(self, small_geometric, geometric_oracle,
                                          geometric_simulator):
        scheme = ThorupZwickRouting(small_geometric, k=1, oracle=geometric_oracle, seed=1)
        report = geometric_simulator.evaluate(scheme, num_pairs=80, seed=5)
        assert report.failures == 0
        assert report.max_stretch <= 3.0 + 1e-6  # single level of pivots


class TestAwerbuchPeleg:
    def test_routes_all_pairs_with_bounded_stretch(self, ap, geometric_simulator):
        report = geometric_simulator.evaluate(ap, num_pairs=150, seed=6)
        assert report.failures == 0
        assert report.max_stretch <= 16 * ap.k + 8

    def test_number_of_scales_tracks_aspect_ratio(self, small_geometric, geometric_oracle):
        import math

        ap2 = AwerbuchPelegRouting(small_geometric, k=2, oracle=geometric_oracle, seed=1)
        expected = math.ceil(math.log2(geometric_oracle.aspect_ratio())) + 1
        assert abs(ap2.num_scales - expected) <= 1

    def test_space_grows_with_aspect_ratio(self):
        base = random_geometric_graph(30, weights="unit", seed=9)
        small_delta = rescale_aspect_ratio(base, 10.0, seed=1)
        large_delta = rescale_aspect_ratio(base, 1e7, seed=1)
        bits_small = AwerbuchPelegRouting(small_delta, k=2, seed=2).max_table_bits()
        bits_large = AwerbuchPelegRouting(large_delta, k=2, seed=2).max_table_bits()
        assert bits_large > 1.5 * bits_small

    def test_name_independent(self, ap):
        assert not ap.labeled and ap.max_label_bits() == 0


class TestExponentialStretch:
    def test_routes_all_pairs(self, expo, geometric_simulator):
        report = geometric_simulator.evaluate(expo, num_pairs=150, seed=7)
        assert report.failures == 0

    def test_name_independent(self, expo):
        assert not expo.labeled and expo.max_label_bits() == 0

    def test_top_level_single_landmark_per_component(self, expo, small_geometric):
        assert len(expo.levels[-1]) == len(small_geometric.connected_components())

    def test_worse_stretch_than_agm_at_same_k(self, expo, agm_k2, geometric_simulator):
        rep_expo = geometric_simulator.evaluate(expo, num_pairs=150, seed=8)
        rep_agm = geometric_simulator.evaluate(agm_k2, num_pairs=150, seed=8)
        assert rep_expo.avg_stretch >= rep_agm.avg_stretch * 0.8


class TestFactory:
    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_factory_builds_every_scheme(self, name, small_er, er_oracle, er_simulator):
        scheme = build_scheme(name, small_er, k=2, seed=1, oracle=er_oracle,
                              **({"params": None} if False else {}))
        report = er_simulator.evaluate(scheme, num_pairs=40, seed=2)
        assert report.failures == 0

    def test_factory_aliases(self, small_er, er_oracle):
        assert build_scheme("tz", small_er, k=2, oracle=er_oracle).scheme_name == "thorup-zwick"
        assert build_scheme("spt", small_er, oracle=er_oracle).scheme_name == "shortest-path"

    def test_factory_unknown_name(self, small_er):
        with pytest.raises(ValueError):
            build_scheme("bogus", small_er)
